package workflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hpa/internal/dict"
	"hpa/internal/flatwire"
	"hpa/internal/kmeans"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/sparse"
	"hpa/internal/tfidf"
)

// This file holds the built-in worker kernels — the serializable forms of
// the shard tasks that can leave the coordinator process — and the
// Remotable implementations of the operators that produce them:
//
//   - tfidf.count: a corpus shard described by pario.SourceSpec in, the
//     shard's term counts (tfidf.WireShardCounts, DF included) back;
//   - tfidf.transform: a shard's counts plus the global term table in,
//     the shard's score vectors (*tfidf.VectorShard) back;
//   - kmeans.assign: one loop shard's assignment iteration — centroids and
//     previous assignments in, the shard's kmeans.Accum (wire form) and
//     new assignments back. The shard's documents ship once, on the first
//     iteration, and are cached in a worker-side session that backend
//     affinity keeps on one worker;
//   - kmeans.seed: one K-Means++ seed round's min-distance scan over one
//     loop shard — the last chosen seed and the shard's current distance
//     window in, the min-updated window back. It shares the assignment
//     loop's sessions (same affinity key), so the shard's documents ship
//     once for seeding and iterations combined.
//
// Kernels run the same functions the local path runs (tfidf.CountShard,
// tfidf.TransformShard, kmeans.AssignRange), so remote results are
// bit-identical to local ones by construction; the wire forms only ever
// flatten dictionaries and accumulators, never recompute scores.
//
// Every kernel reply bypasses gob: the tfidf.count reply (a flat
// WireShardCounts), the tfidf.transform reply (a flat VectorShard behind a
// miss-flag header), the kmeans.assign reply (a flat AccumWire plus
// assignment/distance blocks) and the kmeans.seed reply (a flat distance
// window). Inlined global term-table bodies travel flat too
// (tfidf.WireGlobal.EncodeFlat); only the small argument envelopes stay
// gob. Flat payloads carry floats as IEEE 754 bit patterns, so flat
// shipping preserves the bit-identity contract. The transform kernel
// additionally resolves two worker-side caches before computing: the
// global term table by content hash (shipped as a hash, pulled inline only
// on the first miss per worker) and the shard's phase-1 counts by session
// key (cached by the count kernel on the same worker, routed back by
// affinity).

func init() {
	RegisterKernel("tfidf.count", runCountKernelFlat)
	RegisterKernel("tfidf.transform", runTransformKernelFlat)
	RegisterKernel("kmeans.assign", runKMAssignKernelFlat)
	RegisterKernel("kmeans.seed", runKMSeedKernelFlat)
}

// workerPool is the worker process's compute pool, shared by every kernel
// invocation (kernels may serve several shards concurrently).
var workerPool = sync.OnceValue(func() *par.Pool { return par.NewPool(runtime.GOMAXPROCS(0)) })

// CountTaskArgs are the tfidf.count kernel arguments.
type CountTaskArgs struct {
	// Shard describes the corpus shard (paths + global [Lo, Hi) range).
	Shard pario.SourceSpec
	// Session, when non-empty, makes the worker keep the live ShardCounts
	// cached under this key after replying, so the matching transform task
	// (routed here by the shared affinity key) can consume them without the
	// coordinator re-serializing every document's term counts.
	Session string
	// Opts is the serializable option subset of the TF/IDF operator.
	Opts tfidf.WireOptions
}

// runCountKernel executes phase 1 over the described shard on the worker.
func runCountKernel(a *CountTaskArgs) (*tfidf.WireShardCounts, error) {
	opts := a.Opts.Options()
	readers := workerPool().Workers()
	sc, err := tfidf.CountShard(a.Shard.Open(nil), readers, opts)
	if err != nil {
		return nil, err
	}
	// CountShard derives [Lo, Hi) from SubSources; a spec-opened shard is a
	// plain FileSource, so restore the global range from the descriptor.
	sc.Lo, sc.Hi = a.Shard.Lo, a.Shard.Hi
	w := sc.Wire(true)
	if a.Session != "" {
		// Cache after Wire copied the contents: the reply still carries
		// everything the coordinator's DF merge needs, while the live
		// dictionaries stay here for the transform task.
		cacheCounts(a.Session, sc)
	}
	return w, nil
}

// runCountKernelFlat is the registered kernel: gob args in (a shard
// descriptor — tiny), flat reply out (the shard's full term counts, DF
// included — a cold path per run but a large body per shard).
func runCountKernelFlat(body []byte) ([]byte, error) {
	var a CountTaskArgs
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&a); err != nil {
		return nil, fmt.Errorf("workflow: kernel tfidf.count: decode args: %w", err)
	}
	w, err := runCountKernel(&a)
	if err != nil {
		return nil, fmt.Errorf("workflow: kernel tfidf.count: %w", err)
	}
	return w.EncodeFlat(nil), nil
}

// TransformTaskArgs are the tfidf.transform kernel arguments.
type TransformTaskArgs struct {
	// Counts is the shard's phase-1 output inlined (DF omitted — the global
	// merge consumed it). Nil when CountsSession names the worker's cached
	// live shard instead; a resend after a session miss inlines it.
	Counts *tfidf.WireShardCounts
	// CountsSession, when non-empty, keys the count kernel's cached
	// ShardCounts on the worker the shared affinity routed both tasks to.
	CountsSession string
	// GlobalFlat is the merged term table inlined, in flat wire form
	// (tfidf.WireGlobal.EncodeFlat). Nil on the optimistic first send —
	// GlobalHash alone identifies it — and populated only on the resend
	// answering a worker cache miss.
	GlobalFlat []byte
	// GlobalHash is the table's content digest (tfidf.Global.ContentHash),
	// the worker's cache key. Always set.
	GlobalHash uint64
	// Opts is the serializable option subset.
	Opts tfidf.WireOptions
}

// Transform reply framing: a magic header and a miss bitmask, followed by
// the flat VectorShard payload only when no body was missing.
const (
	transformReplyMagic uint32 = 0x48505452 // "HPTR"
	// needGlobalFlag reports the worker has no table under GlobalHash.
	needGlobalFlag uint32 = 1 << 0
	// needCountsFlag reports the worker has no counts under CountsSession.
	needCountsFlag uint32 = 1 << 1
)

// runTransformKernelFlat executes phase 2 over one shard on the worker, or
// replies with a miss bitmask when a keyed body (global table, cached
// counts) is absent — the coordinator then re-sends the task with the
// missing bodies inlined.
func runTransformKernelFlat(body []byte) ([]byte, error) {
	var a TransformTaskArgs
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&a); err != nil {
		return nil, fmt.Errorf("workflow: kernel tfidf.transform: decode args: %w", err)
	}
	if a.GlobalFlat != nil {
		globalInlineShips.Add(1)
	}
	opts := a.Opts.Options()
	// Resolve the global table: content-hash cache first, else the inlined
	// body (cached for every later shard this worker transforms).
	g := cachedGlobal(a.GlobalHash, opts.DictKind)
	if g == nil && a.GlobalFlat != nil {
		wg, err := tfidf.DecodeFlatWireGlobal(a.GlobalFlat)
		if err != nil {
			return nil, fmt.Errorf("workflow: kernel tfidf.transform: %w", err)
		}
		g = wg.Global(opts.DictKind)
		storeGlobal(a.GlobalHash, opts.DictKind, g)
	}
	// Resolve the counts: an inlined body wins; otherwise the count
	// kernel's cached live shard. The cache entry is not consumed yet — a
	// global miss must leave it in place for the resend.
	var sc *tfidf.ShardCounts
	fromCache := false
	if a.Counts != nil {
		sc = a.Counts.ShardCounts(opts)
	} else if a.CountsSession != "" {
		sc = peekCounts(a.CountsSession)
		fromCache = sc != nil
	}
	var flags uint32
	if g == nil {
		flags |= needGlobalFlag
	}
	if sc == nil {
		flags |= needCountsFlag
	}
	if flags != 0 {
		b := flatwire.AppendU32(nil, transformReplyMagic)
		return flatwire.AppendU32(b, flags), nil
	}
	vs := tfidf.TransformShard(g, sc, workerPool(), opts)
	if fromCache {
		dropCounts(a.CountsSession) // TransformShard consumed the dictionaries
	}
	b := flatwire.AppendU32(nil, transformReplyMagic)
	b = flatwire.AppendU32(b, 0)
	return vs.EncodeFlat(b), nil
}

// workerCacheTTL bounds how long an idle worker-side cache entry (global
// table, shard counts) survives; entries are evicted lazily on the next
// kernel call, like loop-shard sessions.
const workerCacheTTL = 10 * time.Minute

// globalInlineShips counts transform arguments that arrived with the
// global term table inlined — the resend path after a worker cache miss.
// In steady state a table body reaches a worker process at most once per
// (hash, kind); the ship-bound test asserts on this counter.
var globalInlineShips atomic.Int64

// globalReships counts, coordinator-side, how many transform tasks had to
// re-ship the global term table after a worker cache miss — the same
// traffic globalInlineShips counts on the worker, observable from the
// process that scheduled it (hpa-serve exposes it on /metrics).
var globalReships atomic.Int64

// GlobalReships returns the process-wide count of global term-table
// re-ships this coordinator performed.
func GlobalReships() int64 { return globalReships.Load() }

// globalCacheKey identifies one cached global term table: the content hash
// plus the dictionary kind the lookup table was rebuilt with (two runs may
// share a corpus but configure different dictionaries).
type globalCacheKey struct {
	hash uint64
	kind dict.Kind
}

type globalCacheEntry struct {
	g       *tfidf.Global
	lastUse time.Time
}

var globalCache = struct {
	sync.Mutex
	m map[globalCacheKey]*globalCacheEntry
}{m: make(map[globalCacheKey]*globalCacheEntry)}

// cachedGlobal returns the cached table for (hash, kind), nil on a miss,
// evicting expired entries on the way.
func cachedGlobal(hash uint64, kind dict.Kind) *tfidf.Global {
	now := time.Now()
	key := globalCacheKey{hash, kind}
	globalCache.Lock()
	defer globalCache.Unlock()
	for k, e := range globalCache.m {
		if k != key && now.Sub(e.lastUse) > workerCacheTTL {
			delete(globalCache.m, k)
		}
	}
	e := globalCache.m[key]
	if e == nil {
		return nil
	}
	e.lastUse = now
	return e.g
}

// storeGlobal caches a rebuilt table under (hash, kind).
func storeGlobal(hash uint64, kind dict.Kind, g *tfidf.Global) {
	globalCache.Lock()
	defer globalCache.Unlock()
	globalCache.m[globalCacheKey{hash, kind}] = &globalCacheEntry{g: g, lastUse: time.Now()}
}

type countCacheEntry struct {
	sc      *tfidf.ShardCounts
	lastUse time.Time
}

var countCache = struct {
	sync.Mutex
	m map[string]*countCacheEntry
}{m: make(map[string]*countCacheEntry)}

// cacheCounts keeps a count kernel's live shard for the matching transform
// task, evicting expired entries on the way. Re-caching a session key
// overwrites the entry with identical content (shard counts are a pure
// function of the shard and the options).
func cacheCounts(session string, sc *tfidf.ShardCounts) {
	now := time.Now()
	countCache.Lock()
	defer countCache.Unlock()
	for k, e := range countCache.m {
		if k != session && now.Sub(e.lastUse) > workerCacheTTL {
			delete(countCache.m, k)
		}
	}
	countCache.m[session] = &countCacheEntry{sc: sc, lastUse: now}
}

// peekCounts returns the cached shard without consuming the entry (a
// transform task that misses the global must leave the counts for its
// resend), nil on a miss.
func peekCounts(session string) *tfidf.ShardCounts {
	countCache.Lock()
	defer countCache.Unlock()
	e := countCache.m[session]
	if e == nil {
		return nil
	}
	e.lastUse = time.Now()
	return e.sc
}

// dropCounts removes a consumed entry.
func dropCounts(session string) {
	countCache.Lock()
	defer countCache.Unlock()
	delete(countCache.m, session)
}

// KMShardInit carries a loop shard's per-loop constants, shipped once on
// the shard's first iteration and cached in the worker session.
type KMShardInit struct {
	// Vectors and Norms are the shard's documents and their squared norms.
	Vectors []sparse.Vector
	Norms   []float64
	// Dim is the dense dimensionality, K the cluster count.
	Dim, K int
	// WantDists makes the worker track and return per-document distances
	// (the coordinator's ReseedFarthest policy needs them).
	WantDists bool
	// Prune makes the worker maintain a shard-local kmeans.BoundsPass, so
	// assignment pruning works identically whether the shard runs here or
	// on the coordinator. Bounds never ship: they are advisory state, and
	// a fresh session (all bounds −Inf) just scans fully, which is always
	// correct.
	Prune bool
	// Elkan selects the per-centroid lower-bound variant of the bounds pass
	// (kmeans.BoundsPass.EnableElkan). The worker must mirror the
	// coordinator's variant: the two variants skip different documents, and
	// a skip changes which float operations run.
	Elkan bool
	// Block is the coordinator's resolved blocked-kernel lane width
	// (kmeans.Clusterer.BlockWidth; 0 = scalar). Unlike Prune/Elkan this
	// never affects results — any width is bit-identical — it only keeps
	// the kernel shape consistent across backends.
	Block int
}

// KMAssignTaskArgs are the kmeans.assign kernel arguments — one shard's
// assignment iteration.
type KMAssignTaskArgs struct {
	// Session identifies the shard's worker-side session (loop + shard).
	Session string
	// Init is present on the shard's first iteration only.
	Init *KMShardInit
	// Centroids and CNorms are the current iteration's centroids.
	Centroids [][]float64
	CNorms    []float64
	// Assign holds the shard's previous assignments (shard-local indexing),
	// so the moved count stays exact whether or not the session survived.
	Assign []int32
	// Drift holds the padded per-centroid drifts of the previous centroid
	// update (kmeans.Clusterer.Drift) — what the session's bounds decay by
	// before this iteration's pruned assignment. Nil on the first iteration
	// and when pruning is off.
	Drift []float64
}

// KMAssignReply is the kmeans.assign kernel reply: exactly the state the
// coordinator's ordered per-iteration reduce needs.
type KMAssignReply struct {
	// Accum is the shard's accumulator set in wire form.
	Accum *kmeans.AccumWire
	// Assign holds the shard's new assignments.
	Assign []int32
	// Dists holds per-document distances when the init requested them.
	Dists []float64
}

// kmSession is a worker-side loop shard: the cached documents plus the
// recycled accumulator, reused across the loop's iterations.
type kmSession struct {
	mu      sync.Mutex
	docs    []sparse.Vector
	norms   []float64
	k       int
	acc     *kmeans.Accum
	dists   []float64
	bp      *kmeans.BoundsPass
	layout  *sparse.BlockLayout // blocked-kernel transpose, refilled per call
	lastUse time.Time
}

// kmSessionTTL bounds how long an idle loop-shard session survives on a
// worker; sessions are evicted lazily on the next kernel call, so a
// long-running worker does not accumulate state from finished loops.
const kmSessionTTL = 10 * time.Minute

var kmSessions = struct {
	sync.Mutex
	m map[string]*kmSession
}{m: make(map[string]*kmSession)}

// kmSessionFor returns (creating if init allows) the session for one loop
// shard, evicting expired sessions on the way.
func kmSessionFor(id string, init *KMShardInit) (*kmSession, error) {
	now := time.Now()
	kmSessions.Lock()
	defer kmSessions.Unlock()
	for key, s := range kmSessions.m {
		if key != id && now.Sub(s.lastUse) > kmSessionTTL {
			delete(kmSessions.m, key)
		}
	}
	s := kmSessions.m[id]
	if s == nil {
		if init == nil {
			return nil, fmt.Errorf("loop shard session %q lost (worker restarted mid-loop?)", id)
		}
		s = &kmSession{
			docs:  init.Vectors,
			norms: init.Norms,
			k:     init.K,
			acc:   kmeans.NewAccumFor(init.K, init.Dim),
		}
		if init.WantDists {
			s.dists = make([]float64, len(init.Vectors))
		}
		if init.Prune {
			s.bp = kmeans.NewBoundsPass(len(init.Vectors), init.Dim)
			if init.Elkan {
				s.bp.EnableElkan(init.K)
			}
		}
		if init.Block > 0 {
			s.layout = sparse.NewBlockLayout(init.K, init.Dim, init.Block)
		}
		kmSessions.m[id] = s
	}
	s.lastUse = now
	return s, nil
}

// runKMAssignKernel executes one loop shard's assignment iteration on the
// worker: the same kmeans.AssignRange the coordinator would run, over the
// session's cached documents.
func runKMAssignKernel(a *KMAssignTaskArgs) (*KMAssignReply, error) {
	s, err := kmSessionFor(a.Session, a.Init)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.docs)
	if len(a.Assign) != n {
		return nil, fmt.Errorf("loop shard %q: %d previous assignments for %d documents", a.Session, len(a.Assign), n)
	}
	if len(a.Centroids) != s.k || len(a.CNorms) != s.k {
		return nil, fmt.Errorf("loop shard %q: %d centroids for k=%d", a.Session, len(a.Centroids), s.k)
	}
	if s.bp != nil && a.Drift != nil {
		if len(a.Drift) != s.k {
			return nil, fmt.Errorf("loop shard %q: %d drifts for k=%d", a.Session, len(a.Drift), s.k)
		}
		s.bp.SetDrift(a.Drift)
	}
	s.acc.Reset()
	if s.layout != nil {
		// Re-transpose this iteration's shipped centroids; block width never
		// changes results, so the layout is purely a work-shape choice.
		s.layout.Fill(a.Centroids)
	}
	kmeans.AssignRange(0, n, s.k, s.docs, s.norms, a.Centroids, a.CNorms, s.layout, a.Assign, s.dists, s.bp, s.acc)
	return &KMAssignReply{Accum: s.acc.Wire(), Assign: a.Assign, Dists: s.dists}, nil
}

// kmAssignReplyMagic identifies a flat kmeans.assign reply buffer.
const kmAssignReplyMagic uint32 = 0x48504b41 // "HPKA"

// EncodeFlat returns the reply in flat layout: magic, the accumulator's
// flat wire form, then the assignment block and (optionally) the distance
// block. Floats travel as IEEE 754 bits; the absorbed state is
// bit-identical to the worker's.
func (r *KMAssignReply) EncodeFlat() []byte {
	b := flatwire.AppendU32(nil, kmAssignReplyMagic)
	b = r.Accum.EncodeFlat(b)
	b = flatwire.AppendU32(b, uint32(len(r.Assign)))
	b = flatwire.AppendI32s(b, r.Assign)
	if r.Dists != nil {
		b = flatwire.AppendU32(b, 1)
		b = flatwire.AppendF64s(b, r.Dists)
	} else {
		b = flatwire.AppendU32(b, 0)
	}
	return b
}

// DecodeFlatKMAssignReply decodes a flat kmeans.assign reply, validating
// magic, counts, truncation and trailing bytes.
func DecodeFlatKMAssignReply(body []byte) (*KMAssignReply, error) {
	r := flatwire.NewReader(body)
	r.Magic(kmAssignReplyMagic, "kmeans assign reply")
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("workflow: decode kmeans.assign reply: %w", err)
	}
	acc, err := kmeans.ConsumeFlatAccumWire(r)
	if err != nil {
		return nil, fmt.Errorf("workflow: decode kmeans.assign reply: %w", err)
	}
	rep := &KMAssignReply{Accum: acc}
	n := r.Count(4)
	rep.Assign = r.I32s(n)
	switch r.U32() {
	case 0:
	case 1:
		rep.Dists = r.F64s(n)
	default:
		return nil, fmt.Errorf("workflow: decode kmeans.assign reply: bad distance marker")
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("workflow: decode kmeans.assign reply: %w", err)
	}
	return rep, nil
}

// runKMAssignKernelFlat is the registered kernel: gob args in (small —
// centroids and previous assignments), flat reply out (the hot direction:
// the accumulator's sparse centroid sums every iteration).
func runKMAssignKernelFlat(body []byte) ([]byte, error) {
	var a KMAssignTaskArgs
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&a); err != nil {
		return nil, fmt.Errorf("workflow: kernel kmeans.assign: decode args: %w", err)
	}
	rep, err := runKMAssignKernel(&a)
	if err != nil {
		return nil, fmt.Errorf("workflow: kernel kmeans.assign: %w", err)
	}
	return rep.EncodeFlat(), nil
}

// KMSeedTaskArgs are the kmeans.seed kernel arguments — one seed round's
// min-distance scan over one loop shard.
type KMSeedTaskArgs struct {
	// Session identifies the shard's worker-side session — the same key the
	// assignment iterations use, so documents ship once for both.
	Session string
	// Init is present on the shard's first contact with the worker only
	// (usually the first seed round; the assignment tasks then find the
	// session warm).
	Init *KMShardInit
	// Last is the most recently chosen seed document.
	Last sparse.Vector
	// D2 is the shard's current window of the running min-distance array.
	D2 []float64
}

// kmSeedReplyMagic identifies a flat kmeans.seed reply buffer.
const kmSeedReplyMagic uint32 = 0x48505344 // "HPSD"

// runKMSeedKernel executes one seed round's scan on the worker: the same
// kmeans.SeedScanRange the coordinator's local path runs, over the
// session's cached documents — so the returned window is bit-identical to
// a local scan.
func runKMSeedKernel(a *KMSeedTaskArgs) ([]float64, error) {
	s, err := kmSessionFor(a.Session, a.Init)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(a.D2) != len(s.docs) {
		return nil, fmt.Errorf("loop shard %q: %d seed distances for %d documents", a.Session, len(a.D2), len(s.docs))
	}
	kmeans.SeedScanRange(s.docs, &a.Last, a.D2)
	return a.D2, nil
}

// runKMSeedKernelFlat is the registered kernel: gob args in, flat reply out
// (magic, count, then the min-updated distance window as IEEE 754 bits).
func runKMSeedKernelFlat(body []byte) ([]byte, error) {
	var a KMSeedTaskArgs
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&a); err != nil {
		return nil, fmt.Errorf("workflow: kernel kmeans.seed: decode args: %w", err)
	}
	d2, err := runKMSeedKernel(&a)
	if err != nil {
		return nil, fmt.Errorf("workflow: kernel kmeans.seed: %w", err)
	}
	b := flatwire.AppendU32(nil, kmSeedReplyMagic)
	b = flatwire.AppendU32(b, uint32(len(d2)))
	return flatwire.AppendF64s(b, d2), nil
}

// DecodeFlatKMSeedReply decodes a flat kmeans.seed reply, validating magic,
// count, truncation and trailing bytes.
func DecodeFlatKMSeedReply(body []byte) ([]float64, error) {
	r := flatwire.NewReader(body)
	r.Magic(kmSeedReplyMagic, "kmeans seed reply")
	n := r.Count(8)
	d2 := r.F64s(n)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("workflow: decode kmeans.seed reply: %w", err)
	}
	return d2, nil
}

// RemoteTask implements Remotable: a tf-map shard ships when the corpus
// shard has an on-disk identity and the options serialize. With a linked
// transform stage (pair), the task carries a counts-cache session plus the
// matching affinity key, so the shard's transform lands on the same worker
// and reuses the live dictionaries this task leaves behind.
func (o *TFMapOp) RemoteTask(ins []Value, idx, total int) (*RemoteTask, bool) {
	src, ok := ins[0].(pario.Source)
	if !ok {
		return nil, false
	}
	spec, ok := pario.Describe(src)
	if !ok {
		return nil, false
	}
	wopts, ok := o.Opts.Wire()
	if !ok {
		return nil, false
	}
	opts := o.Opts
	pair := o.pair
	args := CountTaskArgs{Shard: *spec, Opts: wopts}
	affinity := ""
	if pair != nil {
		args.Session = pair.countSession(idx)
		affinity = args.Session
	}
	return &RemoteTask{
		Op:       "tfidf.count",
		Args:     args,
		Affinity: affinity,
		Phase:    tfidf.PhaseInputWC,
		Codec:    "flat",
		Absorb: func(body []byte) (Value, error) {
			w, err := tfidf.DecodeFlatWireShardCounts(body)
			if err != nil {
				return nil, fmt.Errorf("workflow: tfidf.count reply: %w", err)
			}
			if pair != nil {
				pair.markCounted(idx)
			}
			return w.ShardCounts(opts), nil
		},
	}, true
}

// RemoteTask implements Remotable: a transform shard ships by reference
// where it can — the global table always as its content hash (the body is
// pulled by resend only on the first miss per worker), the counts by
// session key when the map stage cached them on a worker — and absorbs the
// flat VectorShard reply. Shards counted locally inline their counts, as
// before.
func (o *TransformOp) RemoteTask(ins []Value, idx, total int) (*RemoteTask, bool) {
	sc, ok := ins[0].(*tfidf.ShardCounts)
	if !ok {
		return nil, false
	}
	g, ok := ins[1].(*tfidf.Global)
	if !ok {
		return nil, false
	}
	wopts, ok := o.Opts.Wire()
	if !ok {
		return nil, false
	}
	pair := o.pair
	args := TransformTaskArgs{GlobalHash: g.ContentHash(), Opts: wopts}
	affinity := ""
	if pair != nil && pair.wasCounted(idx) {
		args.CountsSession = pair.countSession(idx)
		affinity = args.CountsSession
	} else {
		args.Counts = sc.Wire(false)
	}
	return &RemoteTask{
		Op:       "tfidf.transform",
		Args:     args,
		Affinity: affinity,
		Phase:    tfidf.PhaseTransform,
		Codec:    "flat",
		Absorb: func(body []byte) (Value, error) {
			r := flatwire.NewReader(body)
			r.Magic(transformReplyMagic, "transform reply")
			flags := r.U32()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("workflow: tfidf.transform reply: %w", err)
			}
			if flags&^(needGlobalFlag|needCountsFlag) != 0 {
				return nil, fmt.Errorf("workflow: tfidf.transform reply: unknown miss flags %#x", flags)
			}
			if flags != 0 {
				resend := args
				if flags&needGlobalFlag != 0 {
					resend.GlobalFlat = g.Wire().EncodeFlat(nil)
					globalReships.Add(1)
					if pair != nil {
						pair.noteGlobalShip()
					}
				}
				if flags&needCountsFlag != 0 {
					resend.Counts = sc.Wire(false)
					resend.CountsSession = ""
				}
				return nil, &needResend{Args: resend}
			}
			vs, err := tfidf.DecodeFlatVectorShard(body[8:])
			if err != nil {
				return nil, fmt.Errorf("workflow: tfidf.transform reply: %w", err)
			}
			return vs, nil
		},
	}, true
}
