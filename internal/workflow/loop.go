package workflow

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"hpa/internal/kmeans"
	"hpa/internal/pario"
	"hpa/internal/sparse"
	"hpa/internal/tfidf"
)

// This file extends the partitioned execution substrate into iterative
// operators: computations that sweep a fixed shard set once per iteration
// with a reduction barrier between iterations — the structure of K-Means
// (parallel assignment, serial centroid update, repeat until convergence).
//
// An IterativeOp node is scheduled by the executor as a loop of partition
// tasks: one BeginLoop task consumes the gathered inputs and allocates the
// loop state, then each iteration dispatches one RunShard task per shard
// (concurrently, on the pool), barriers, and runs one EndIteration task
// that reduces the per-shard partials in shard-index order — so the
// reduction is deterministic no matter how the shard tasks interleaved —
// and decides whether to iterate again. A final Finish task produces the
// node's (scalar) output.
//
// The same shard task set is re-dispatched every iteration; loop states are
// expected to recycle their per-shard buffers (the K-Means state reuses one
// kmeans.Accum per shard across all iterations), preserving the paper's
// no-allocation-inside-iterations property under partitioned execution.

// IterativeOp is implemented by operators whose computation is an iterative
// loop over a fixed shard set with a per-iteration reduction barrier. The
// executor drives the loop; the operator supplies the shard count and the
// loop state.
type IterativeOp interface {
	Operator
	// LoopShards returns the loop's shard count. It must be stable across
	// calls and at least 1; the count is independent of the producer's
	// partitioning (an iterative stage may use more or fewer shards than
	// the map stages feeding it).
	LoopShards() int
	// BeginLoop consumes the gathered input values and allocates the loop
	// state. It runs as one task before the first iteration.
	BeginLoop(ctx *Context, ins []Value, shards int) (LoopState, error)
}

// LoopState carries one iterative node through its iterations. The
// executor guarantees: RunShard calls of one iteration may run
// concurrently (distinct idx); EndIteration runs alone after every shard
// of the iteration completed, with the partials in shard-index order;
// Finish runs alone after EndIteration reports done. Every loop executes
// at least one iteration.
type LoopState interface {
	// RunShard computes shard idx's contribution to the current iteration
	// and returns it as the shard's partial.
	RunShard(ctx *Context, idx, total int) (any, error)
	// EndIteration reduces the iteration's partials (indexed by shard) and
	// reports whether the loop is done — the per-iteration barrier.
	EndIteration(ctx *Context, partials []any) (bool, error)
	// Finish produces the node's output dataset after the loop ends.
	Finish(ctx *Context) (Value, error)
}

// PreparedLoop is implemented by loop states that need sharded preparation
// waves before the first iteration — rounds of per-shard scans each closed
// by a coordinator-side barrier, scheduled exactly like iterations. The
// executor guarantees: PrepareShard calls of one round may run concurrently
// (distinct idx, same round); EndPrepare(round) runs alone after every
// shard of the round completed; rounds run in order 0..PrepareRounds()-1,
// all before the first RunShard. K-Means++ seeding is the motivating case:
// each of its k−1 seed rounds is one prepare wave (per-shard min-distance
// scans) whose barrier draws the next seed.
type PreparedLoop interface {
	LoopState
	// PrepareRounds returns how many preparation rounds the loop needs
	// (0 = none). Called once, after BeginLoop.
	PrepareRounds() int
	// PrepareShard computes shard idx's contribution to the given round.
	PrepareShard(ctx *Context, round, idx, total int) error
	// EndPrepare closes one round — the per-round barrier.
	EndPrepare(ctx *Context, round int) error
}

// Reflected port types of the iterative K-Means operators.
var kmResultType = reflect.TypeOf((*kmeans.Result)(nil))

// KMAssignOp is the iterative assignment stage of partitioned K-Means: the
// K-Means loop hosted on the executor's IterativeOp contract. Each
// iteration runs one assignment task per loop shard (kmeans.AssignShard
// over a contiguous document range, accumulating into a recycled
// kmeans.Accum) and one reduction task (kmeans.EndIteration merging the
// shard accumulators in shard-index order and updating centroids), so the
// clustering decision sequence — seeding, assignment tie-breaks,
// convergence — is exactly the bulk Clusterer's. Shard ranges are weighted
// by per-document nonzero counts (pario.WeightedBoundaries), balancing the
// O(nnz × k) assignment work per shard; boundaries never affect results.
//
// Port 0 accepts the dataset in any of its shapes: the gathered vector
// shards of the partitioned TF/IDF transform (*Partitions of
// *tfidf.VectorShard, with shard-aligned precomputed norms), the fused
// in-memory *tfidf.Result, or a *Matrix loaded from ARFF.
type KMAssignOp struct {
	// Opts configures clustering; Recorder is overridden from the context.
	Opts kmeans.Options
	// Shards is the loop's shard count; 0 selects an automatic count
	// (2×GOMAXPROCS, over-decomposed so work stealing rebalances straggler
	// shards, mirroring PartitionOp). The loop count is independent of the
	// TF/IDF map shard count — the optimizer retunes it separately. Like
	// PartitionOp.Shards, the count is resolved once, on the first
	// Validate/Explain/Run of a plan containing the operator; set it
	// before then (mutations after resolution are ignored).
	Shards int

	once     sync.Once
	resolved int
}

// Name implements Operator.
func (o *KMAssignOp) Name() string { return "km-assign" }

// loopShardsRemotable marks the operator's loop states as RemotableLoop
// for backend placement annotations.
func (o *KMAssignOp) loopShardsRemotable() {}

// Inputs implements TypedOperator. The port is dynamically typed: it
// accepts gathered *Partitions of vector shards as well as the monolithic
// Vectorized datasets, checked at run time.
func (o *KMAssignOp) Inputs() []reflect.Type { return []reflect.Type{anyType} }

// Output implements TypedOperator.
func (o *KMAssignOp) Output() reflect.Type { return kmResultType }

// LoopShards implements IterativeOp.
func (o *KMAssignOp) LoopShards() int {
	o.once.Do(func() {
		o.resolved = o.Shards
		if o.resolved <= 0 {
			if p := runtime.GOMAXPROCS(0); p > 1 {
				o.resolved = 2 * p
			} else {
				o.resolved = 1
			}
		}
	})
	return o.resolved
}

// kmLoopState is the K-Means loop state: the clusterer plus one recycled
// accumulator set per shard, the nonzero-weighted shard boundaries, and
// the bookkeeping remote shard sessions need.
type kmLoopState struct {
	c       *kmeans.Clusterer
	seeding *kmeans.Seeding // deferred K-Means++ state; nil once seeded
	n       int
	dim     int
	bounds  []int // shard boundaries over [0, n], nnz-weighted
	accs    []*kmeans.Accum
	ordered []*kmeans.Accum // scratch for the ordered reduce

	// Remote-shard bookkeeping: the documents and norms to ship on a
	// shard's first remote iteration, a loop-unique session prefix, and
	// which shards already initialized their worker session.
	docs    []sparse.Vector
	norms   []float64
	loopID  uint64
	shipped []bool
}

// kmLoopSeq makes loop session prefixes process-unique.
var kmLoopSeq atomic.Uint64

// kmInput unpacks the assignment input into documents, dimensionality and
// (when precomputed) per-document norms.
func kmInput(in Value) (docs []sparse.Vector, dim int, norms []float64, err error) {
	switch v := in.(type) {
	case *tfidf.Result:
		return v.Vectors, v.Dim(), v.Norms, nil
	case *Matrix:
		return v.Vectors, v.Dim(), nil, nil
	case *Partitions:
		n := 0
		for _, part := range v.Parts {
			vs, ok := part.(*tfidf.VectorShard)
			if !ok {
				return nil, 0, nil, fmt.Errorf("%w: km-assign wants *tfidf.VectorShard shards, got %T", ErrType, part)
			}
			if vs.Hi > n {
				n = vs.Hi
			}
			if vs.Dim > dim {
				dim = vs.Dim
			}
		}
		docs = make([]sparse.Vector, n)
		norms = make([]float64, n)
		for _, part := range v.Parts {
			vs := part.(*tfidf.VectorShard)
			copy(docs[vs.Lo:vs.Hi], vs.Vectors)
			copy(norms[vs.Lo:vs.Hi], vs.Norms)
		}
		return docs, dim, norms, nil
	default:
		return nil, 0, nil, fmt.Errorf("%w: km-assign wants *tfidf.Result, *Matrix or vector shards, got %T", ErrType, in)
	}
}

// BeginLoop implements IterativeOp: clusterer allocation plus the uniform
// first seed draw (the k−1 distance-scan seed rounds run afterwards as
// sharded preparation waves — see PrepareShard), per-shard accumulator
// allocation, and the shard boundaries — weighted by per-document nonzero
// counts (pario.WeightedBoundaries over each vector's NNZ), so every
// shard carries close to equal assignment work (the kernel is O(nnz × k)
// per document) instead of an equal document count. Boundaries are a pure
// function of the vectors and the shard count, and per-document
// assignment is position-independent, so results are bit-identical to the
// count-balanced split. Everything allocated here is recycled across
// iterations.
func (o *KMAssignOp) BeginLoop(ctx *Context, ins []Value, shards int) (LoopState, error) {
	docs, dim, norms, err := kmInput(ins[0])
	if err != nil {
		return nil, err
	}
	opts := o.Opts
	opts.Recorder = ctx.Recorder
	if opts.DocNorms == nil {
		opts.DocNorms = norms
	}
	var c *kmeans.Clusterer
	var seeding *kmeans.Seeding
	err = ctx.Breakdown.TimeSpanErr(kmeans.PhaseKMeans, func() error {
		ctx.Recorder.BeginPhase(kmeans.PhaseKMeans)
		var err error
		c, seeding, err = kmeans.NewDeferredSeed(docs, dim, ctx.Pool, opts)
		if err == nil && seeding.Rounds() == 0 {
			seeding.Finish() // k = 1: no distance rounds, seed inline
			seeding = nil
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	weights := make([]int64, len(docs))
	for i := range docs {
		weights[i] = int64(docs[i].NNZ())
	}
	st := &kmLoopState{
		c:       c,
		seeding: seeding,
		n:       len(docs),
		dim:     dim,
		bounds:  pario.WeightedBoundaries(weights, shards),
		accs:    make([]*kmeans.Accum, shards),
		ordered: make([]*kmeans.Accum, 0, shards),
		docs:    docs,
		norms:   c.DocNorms(),
		loopID:  kmLoopSeq.Add(1),
		shipped: make([]bool, shards),
	}
	for q := range st.accs {
		st.accs[q] = c.NewAccum()
	}
	return st, nil
}

// PrepareRounds implements PreparedLoop: one preparation round per
// K-Means++ seed after the uniformly drawn first (k−1; 0 when k = 1 or
// seeding already finished inline).
func (s *kmLoopState) PrepareRounds() int {
	if s.seeding == nil {
		return 0
	}
	return s.seeding.Rounds()
}

// PrepareShard implements PreparedLoop: one seed round's min-distance scan
// over the shard's document range — a pure per-element min-update, so
// shards of one round run concurrently and results are independent of
// shard count and scheduling.
func (s *kmLoopState) PrepareShard(ctx *Context, round, idx, total int) error {
	ctx.Breakdown.TimeSpan(kmeans.PhaseKMeans, func() {
		s.seeding.ScanRange(s.bounds[idx], s.bounds[idx+1])
	})
	return nil
}

// EndPrepare implements PreparedLoop: the per-round barrier sums the
// min-distance array in ascending document order and draws the round's
// seed — the same RNG consumption as the serial scan, so the chosen seeds
// are bit-identical at any shard count on any backend. The final round
// installs the centroids.
func (s *kmLoopState) EndPrepare(ctx *Context, round int) error {
	last := round == s.seeding.Rounds()-1
	var pick int
	ctx.Breakdown.TimeSpan(kmeans.PhaseKMeans, func() {
		s.seeding.EndRound()
		pick = s.seeding.LastIndex()
		if last {
			s.seeding.Finish()
		}
	})
	if ctx.Tracer.Enabled() {
		label := fmt.Sprintf("round=%d pick=%d", round, pick)
		ctx.Tracer.Emit("kmeans", "seed-round", label, int64(round))
	}
	if last {
		s.seeding = nil
	}
	return nil
}

// RemotePrepareTask implements RemotablePrepare: one seed round's scan over
// one shard as a kmeans.seed kernel call. It reuses the loop's per-shard
// worker sessions (same affinity key as the assignment iterations, so the
// shard's documents ship exactly once across seeding and iterations) and
// ships only the last chosen seed vector plus the shard's current
// min-distance window; the worker runs the same SeedScanRange the local
// path runs and returns the updated window, floats as IEEE 754 bits.
func (s *kmLoopState) RemotePrepareTask(round, idx, total int) (*RemoteTask, bool) {
	lo, hi := s.bounds[idx], s.bounds[idx+1]
	session := s.sessionKey(idx)
	args := KMSeedTaskArgs{
		Session: session,
		Last:    *s.seeding.Last(),
		D2:      s.seeding.D2(lo, hi),
	}
	if !s.shipped[idx] {
		args.Init = &KMShardInit{
			Vectors:   s.docs[lo:hi],
			Norms:     s.norms[lo:hi],
			Dim:       s.dim,
			K:         s.c.K(),
			WantDists: s.c.TracksDists(),
			Prune:     s.c.PruneEnabled(),
			Elkan:     s.c.PruneElkan(),
			Block:     s.c.BlockWidth(),
		}
	}
	seeding := s.seeding
	return &RemoteTask{
		Op:       "kmeans.seed",
		Args:     args,
		Affinity: session,
		Phase:    kmeans.PhaseKMeans,
		Codec:    "flat",
		Absorb: func(body []byte) (Value, error) {
			d2, err := DecodeFlatKMSeedReply(body)
			if err != nil {
				return nil, err
			}
			if len(d2) != hi-lo {
				return nil, fmt.Errorf("%w: kmeans.seed reply for shard %d carries %d distances, want %d",
					ErrType, idx, len(d2), hi-lo)
			}
			seeding.SetD2(lo, d2)
			s.shipped[idx] = true
			return nil, nil
		},
	}, true
}

// RunShard implements LoopState: one iteration's assignment over the
// shard's document range, into the shard's recycled accumulator.
func (s *kmLoopState) RunShard(ctx *Context, idx, total int) (any, error) {
	a := s.accs[idx]
	a.Reset()
	ctx.Breakdown.TimeSpan(kmeans.PhaseKMeans, func() {
		s.c.AssignShard(s.bounds[idx], s.bounds[idx+1], a)
	})
	return a, nil
}

// RemoteShardTask implements RemotableLoop: one iteration of one shard as
// a kmeans.assign kernel call. The shard's documents and norms ship once
// (Init) and stay cached in a worker session the affinity key pins; every
// iteration ships the current centroids and the shard's previous
// assignments, and absorbs the worker's accumulator wire form into the
// shard's recycled Accum — the same partial the local path would produce,
// bit for bit, because the worker runs the same kmeans.AssignRange over
// the same documents.
// sessionKey names one shard's worker-side session, unique per process
// and loop.
func (s *kmLoopState) sessionKey(idx int) string {
	return fmt.Sprintf("km-%d-%d-%d", os.Getpid(), s.loopID, idx)
}

func (s *kmLoopState) RemoteShardTask(idx, total int) (*RemoteTask, bool) {
	lo, hi := s.bounds[idx], s.bounds[idx+1]
	session := s.sessionKey(idx)
	args := KMAssignTaskArgs{
		Session:   session,
		Centroids: s.c.Centroids(),
		CNorms:    s.c.CentroidNorms(),
		Assign:    s.c.Assignments()[lo:hi],
		Drift:     s.c.Drift(),
	}
	if !s.shipped[idx] {
		args.Init = &KMShardInit{
			Vectors:   s.docs[lo:hi],
			Norms:     s.norms[lo:hi],
			Dim:       s.dim,
			K:         s.c.K(),
			WantDists: s.c.TracksDists(),
			Prune:     s.c.PruneEnabled(),
			Elkan:     s.c.PruneElkan(),
			Block:     s.c.BlockWidth(),
		}
	}
	acc := s.accs[idx]
	return &RemoteTask{
		Op:       "kmeans.assign",
		Args:     args,
		Affinity: session,
		Phase:    kmeans.PhaseKMeans,
		Codec:    "flat",
		Absorb: func(body []byte) (Value, error) {
			rep, err := DecodeFlatKMAssignReply(body)
			if err != nil {
				return nil, err
			}
			if rep.Accum == nil || len(rep.Assign) != hi-lo {
				return nil, fmt.Errorf("%w: kmeans.assign reply for shard %d is malformed", ErrType, idx)
			}
			if err := acc.FromWire(rep.Accum); err != nil {
				return nil, err
			}
			if err := s.c.ApplyShardAssignments(lo, rep.Assign, rep.Dists); err != nil {
				return nil, err
			}
			s.shipped[idx] = true
			return acc, nil
		},
	}, true
}

// EndIteration implements LoopState: the ordered reduce. The executor
// delivers partials in shard-index order, so the merge — and therefore the
// centroid floats and the convergence decision — is deterministic
// regardless of shard scheduling.
func (s *kmLoopState) EndIteration(ctx *Context, partials []any) (bool, error) {
	s.ordered = s.ordered[:0]
	for _, p := range partials {
		a, ok := p.(*kmeans.Accum)
		if !ok {
			return false, fmt.Errorf("%w: km-assign partial is %T", ErrType, p)
		}
		s.ordered = append(s.ordered, a)
	}
	var inertia float64
	var moved int
	ctx.Breakdown.TimeSpan(kmeans.PhaseKMeans, func() {
		inertia, moved = s.c.EndIteration(s.ordered)
	})
	if ctx.Tracer.Enabled() {
		// One event per iteration: the moved count is the value, inertia and
		// (when pruning) the cumulative skip count ride the label.
		label := fmt.Sprintf("iter=%d inertia=%.6g", s.c.Iterations(), inertia)
		if ps := s.c.PruneStats(); ps.Enabled {
			label += fmt.Sprintf(" prune-skips=%d", ps.Skipped)
		}
		ctx.Tracer.Emit("kmeans", "iteration", label, int64(moved))
	}
	return s.c.Done(), nil
}

// Finish implements LoopState. The loop's affinity pins are released so a
// long-lived backend does not accumulate dead session keys; the worker
// sessions themselves expire by TTL.
func (s *kmLoopState) Finish(ctx *Context) (Value, error) {
	if ar, ok := ctx.Backend.(affinityReleaser); ok {
		keys := make([]string, len(s.shipped))
		for idx := range keys {
			keys[idx] = s.sessionKey(idx)
		}
		ar.ReleaseAffinity(keys...)
	}
	var res *kmeans.Result
	ctx.Breakdown.TimeSpan(kmeans.PhaseKMeans, func() {
		res = s.c.Finalize()
	})
	return res, nil
}

// Run implements Operator: the serial fallback drives the same loop inline
// (one shard wave at a time, preparation rounds included), for linear
// Pipelines and direct calls.
func (o *KMAssignOp) Run(ctx *Context, in Value) (Value, error) {
	shards := o.LoopShards()
	state, err := o.BeginLoop(ctx, []Value{in}, shards)
	if err != nil {
		return nil, err
	}
	if pl, ok := state.(PreparedLoop); ok {
		rounds := pl.PrepareRounds()
		for r := 0; r < rounds; r++ {
			for q := 0; q < shards; q++ {
				if err := pl.PrepareShard(ctx, r, q, shards); err != nil {
					return nil, err
				}
			}
			if err := pl.EndPrepare(ctx, r); err != nil {
				return nil, err
			}
		}
	}
	partials := make([]any, shards)
	for {
		for q := 0; q < shards; q++ {
			if partials[q], err = state.RunShard(ctx, q, shards); err != nil {
				return nil, err
			}
		}
		done, err := state.EndIteration(ctx, partials)
		if err != nil {
			return nil, err
		}
		if done {
			return state.Finish(ctx)
		}
	}
}

// KMReduceOp closes the iterative K-Means stage: the loop's clustering
// result (port 0) is joined with the upstream dataset (port 1 — the
// TF/IDF result or loaded matrix, needed for document names and, in fused
// runs, the retained scores) into the workflow's *Clustering.
type KMReduceOp struct{}

// Name implements Operator.
func (o *KMReduceOp) Name() string { return "km-reduce" }

// Inputs implements TypedOperator.
func (o *KMReduceOp) Inputs() []reflect.Type {
	return []reflect.Type{kmResultType, vectorizedType}
}

// Output implements TypedOperator.
func (o *KMReduceOp) Output() reflect.Type { return clusteringType }

// RunAll implements MultiOperator.
func (o *KMReduceOp) RunAll(ctx *Context, ins []Value) (Value, error) {
	res, ok := ins[0].(*kmeans.Result)
	if !ok {
		return nil, fmt.Errorf("%w: km-reduce wants *kmeans.Result, got %T", ErrType, ins[0])
	}
	var (
		names []string
		up    *tfidf.Result
		n     int
	)
	switch v := ins[1].(type) {
	case *tfidf.Result:
		names, up, n = v.DocNames, v, len(v.Vectors)
	case *Matrix:
		names, n = v.DocNames, len(v.Vectors)
	default:
		return nil, fmt.Errorf("%w: km-reduce wants *tfidf.Result or *Matrix, got %T", ErrType, ins[1])
	}
	if names == nil {
		names = synthDocNames(n)
	}
	return &Clustering{Result: res, DocNames: names, TFIDF: up}, nil
}

// Run implements Operator; a two-port node is never dispatched through it.
func (o *KMReduceOp) Run(ctx *Context, in Value) (Value, error) {
	return nil, fmt.Errorf("workflow: km-reduce requires both input ports")
}
