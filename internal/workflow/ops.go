package workflow

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"hpa/internal/kmeans"
	"hpa/internal/pario"
	"hpa/internal/sparse"
	"hpa/internal/tfidf"
)

// Reflected dataset types of the built-in operators' ports.
var (
	tfidfResultType = reflect.TypeOf((*tfidf.Result)(nil))
	arffRefType     = reflect.TypeOf((*ARFFRef)(nil))
	matrixType      = reflect.TypeOf((*Matrix)(nil))
	clusteringType  = reflect.TypeOf((*Clustering)(nil))
	wordCountsType  = reflect.TypeOf((*WordCounts)(nil))
)

// PhaseOutput is the final phase of Figures 3 and 4: writing the cluster
// assignment of every document, sequentially ("the output phase is hard to
// parallelize").
const PhaseOutput = "output"

// Matrix is a term-document score matrix: the in-memory form of the
// intermediate dataset between TF/IDF and K-Means.
type Matrix struct {
	// Terms maps column (term ID) to word.
	Terms []string
	// Vectors holds one sparse row per document.
	Vectors []sparse.Vector
	// DocNames identifies documents; may be synthesized when the matrix
	// was loaded from ARFF (the format stores no names).
	DocNames []string
}

// Dim returns the vocabulary size.
func (m *Matrix) Dim() int { return len(m.Terms) }

// ARFFRef points at a materialized matrix on disk.
type ARFFRef struct {
	// Path of the ARFF file.
	Path string
	// DocNames carried alongside (ARFF cannot store them); used only to
	// label final output.
	DocNames []string
	// Bytes written.
	Bytes int64
}

// Clustering pairs K-Means output with document names.
type Clustering struct {
	// Result is the K-Means outcome.
	Result *kmeans.Result
	// DocNames labels documents in output.
	DocNames []string
	// TFIDF carries the upstream operator result when the pipeline ran
	// fused (nil when the matrix came from disk).
	TFIDF *tfidf.Result
}

// TFIDFOp computes TF/IDF vectors from a document source.
type TFIDFOp struct {
	// Opts configures the operator; Recorder is overridden from the
	// context.
	Opts tfidf.Options
}

// Name implements Operator.
func (o *TFIDFOp) Name() string { return "tfidf" }

// Inputs implements TypedOperator.
func (o *TFIDFOp) Inputs() []reflect.Type { return []reflect.Type{sourceType} }

// Output implements TypedOperator.
func (o *TFIDFOp) Output() reflect.Type { return tfidfResultType }

// Run implements Operator: pario.Source -> *tfidf.Result.
func (o *TFIDFOp) Run(ctx *Context, in Value) (Value, error) {
	src, ok := in.(pario.Source)
	if !ok {
		return nil, fmt.Errorf("%w: tfidf wants pario.Source, got %T", ErrType, in)
	}
	opts := o.Opts
	opts.Recorder = ctx.Recorder
	opts.Ctx = ctx.Ctx
	return tfidf.Run(src, ctx.Pool, opts, ctx.Breakdown)
}

// partitionFragment implements partitionable: under PartitionRule the
// monolithic operator becomes phase-1 map shards, the document-frequency
// tree-merge reduction, phase-2 transform shards, and the streaming
// gather.
func (o *TFIDFOp) partitionFragment() fragment {
	// The map and transform stages share a tfShipPair, so a shard counted
	// on a worker is transformed on that worker from the cached counts
	// instead of round-tripping them through the coordinator.
	pair := newTFShipPair()
	return fragment{
		nodes: []fragNode{
			{suffix: "map", op: &TFMapOp{Opts: o.Opts, pair: pair}},
			{suffix: "df", op: &DFReduceOp{Opts: o.Opts}},
			{suffix: "transform", op: &TransformOp{Opts: o.Opts, pair: pair}},
			{suffix: "gather", op: &GatherOp{Opts: o.Opts}},
		},
		edges: []Edge{
			{From: "map", To: "df", Port: 0},
			{From: "map", To: "transform", Port: 0},
			{From: "df", To: "transform", Port: 1},
			{From: "transform", To: "gather", Port: 0},
			{From: "df", To: "gather", Port: 1},
		},
		in:  "map",
		out: "gather",
	}
}

// MaterializeARFF writes the TF/IDF result to an ARFF file in the scratch
// directory — the "tfidf-output" phase of the discrete workflow.
type MaterializeARFF struct {
	// Filename within ctx.ScratchDir (default "tfidf.arff").
	Filename string
}

func (*MaterializeARFF) isMaterializer() {}

// Name implements Operator.
func (o *MaterializeARFF) Name() string { return "materialize-arff" }

// Inputs implements TypedOperator.
func (o *MaterializeARFF) Inputs() []reflect.Type { return []reflect.Type{tfidfResultType} }

// Output implements TypedOperator.
func (o *MaterializeARFF) Output() reflect.Type { return arffRefType }

// Run implements Operator: *tfidf.Result -> *ARFFRef.
func (o *MaterializeARFF) Run(ctx *Context, in Value) (Value, error) {
	res, ok := in.(*tfidf.Result)
	if !ok {
		return nil, fmt.Errorf("%w: materialize wants *tfidf.Result, got %T", ErrType, in)
	}
	name := o.Filename
	if name == "" {
		name = "tfidf.arff"
	}
	path := filepath.Join(ctx.ScratchDir, name)
	n, err := res.WriteARFF(path, ctx.Disk, ctx.Breakdown, ctx.Recorder)
	if err != nil {
		return nil, err
	}
	return &ARFFRef{Path: path, DocNames: res.DocNames, Bytes: n}, nil
}

// LoadARFF reads a materialized matrix back — the "kmeans-input" phase of
// the discrete workflow.
type LoadARFF struct{}

func (*LoadARFF) isLoader() {}

// Name implements Operator.
func (o *LoadARFF) Name() string { return "load-arff" }

// Inputs implements TypedOperator.
func (o *LoadARFF) Inputs() []reflect.Type { return []reflect.Type{arffRefType} }

// Output implements TypedOperator.
func (o *LoadARFF) Output() reflect.Type { return matrixType }

// Run implements Operator: *ARFFRef -> *Matrix.
func (o *LoadARFF) Run(ctx *Context, in Value) (Value, error) {
	ref, ok := in.(*ARFFRef)
	if !ok {
		return nil, fmt.Errorf("%w: load wants *ARFFRef, got %T", ErrType, in)
	}
	terms, rows, err := tfidf.ReadARFF(ref.Path, ctx.Disk, ctx.Breakdown, ctx.Recorder)
	if err != nil {
		return nil, err
	}
	return &Matrix{Terms: terms, Vectors: rows, DocNames: ref.DocNames}, nil
}

// KMeansOp clusters the matrix. It accepts either the fused in-memory
// *tfidf.Result or a *Matrix loaded from disk.
type KMeansOp struct {
	// Opts configures clustering; Recorder is overridden from the context.
	Opts kmeans.Options
}

// Name implements Operator.
func (o *KMeansOp) Name() string { return "kmeans" }

// Inputs implements TypedOperator: the port accepts any Vectorized dataset,
// so both the fused *tfidf.Result and a *Matrix loaded from disk connect.
func (o *KMeansOp) Inputs() []reflect.Type { return []reflect.Type{vectorizedType} }

// Output implements TypedOperator.
func (o *KMeansOp) Output() reflect.Type { return clusteringType }

// Run implements Operator: *tfidf.Result | *Matrix -> *Clustering.
func (o *KMeansOp) Run(ctx *Context, in Value) (Value, error) {
	var (
		vectors []sparse.Vector
		dim     int
		names   []string
		norms   []float64
		up      *tfidf.Result
	)
	switch v := in.(type) {
	case *tfidf.Result:
		vectors, dim, names, norms, up = v.Vectors, v.Dim(), v.DocNames, v.Norms, v
	case *Matrix:
		vectors, dim, names = v.Vectors, v.Dim(), v.DocNames
	default:
		return nil, fmt.Errorf("%w: kmeans wants *tfidf.Result or *Matrix, got %T", ErrType, in)
	}
	opts := o.Opts
	opts.Recorder = ctx.Recorder
	if opts.DocNorms == nil {
		opts.DocNorms = norms
	}
	res, err := kmeans.Run(vectors, dim, ctx.Pool, opts, ctx.Breakdown)
	if err != nil {
		return nil, err
	}
	if names == nil {
		names = synthDocNames(len(vectors))
	}
	return &Clustering{Result: res, DocNames: names, TFIDF: up}, nil
}

// synthDocNames labels documents of a nameless matrix, identically in the
// bulk and partitioned K-Means paths.
func synthDocNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("doc%07d", i)
	}
	return names
}

// WriteAssignments emits the final "output" phase: one "name<TAB>cluster"
// line per document, written sequentially and charged to the device.
type WriteAssignments struct {
	// Filename within ctx.ScratchDir (default "clusters.tsv").
	Filename string
}

// Name implements Operator.
func (o *WriteAssignments) Name() string { return "output" }

// Inputs implements TypedOperator.
func (o *WriteAssignments) Inputs() []reflect.Type { return []reflect.Type{clusteringType} }

// Output implements TypedOperator.
func (o *WriteAssignments) Output() reflect.Type { return clusteringType }

// Run implements Operator: *Clustering -> *Clustering (pass-through).
func (o *WriteAssignments) Run(ctx *Context, in Value) (Value, error) {
	cl, ok := in.(*Clustering)
	if !ok {
		return nil, fmt.Errorf("%w: output wants *Clustering, got %T", ErrType, in)
	}
	name := o.Filename
	if name == "" {
		name = "clusters.tsv"
	}
	path := filepath.Join(ctx.ScratchDir, name)
	err := ctx.Breakdown.TimeErr(PhaseOutput, func() error {
		ctx.Recorder.BeginPhase(PhaseOutput)
		start := time.Now()
		n, err := writeAssignments(path, cl)
		ctx.Disk.ChargeRead(n, true)
		ctx.Recorder.Serial(time.Since(start), n, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	return cl, nil
}

func writeAssignments(path string, cl *Clustering) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var n int64
	for i, a := range cl.Result.Assign {
		line := fmt.Sprintf("%s\t%d\n", cl.DocNames[i], a)
		n += int64(len(line))
		if _, err := w.WriteString(line); err != nil {
			f.Close()
			return n, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}

// TopTermLabels returns, for each cluster, the words of the w heaviest
// centroid components — a human-readable label for the cluster. It
// requires term names, which are available when the pipeline ran fused
// (the TF/IDF result is retained); for discrete runs pass the terms read
// from the ARFF header to LabelWithTerms.
func (c *Clustering) TopTermLabels(w int) ([][]string, bool) {
	if c.TFIDF == nil {
		return nil, false
	}
	return c.LabelWithTerms(c.TFIDF.Terms, w), true
}

// LabelWithTerms maps the top-w centroid components of every cluster to
// words using the provided term table.
func (c *Clustering) LabelWithTerms(terms []string, w int) [][]string {
	top := c.Result.TopTerms(w)
	out := make([][]string, len(top))
	for j, ids := range top {
		out[j] = make([]string, 0, len(ids))
		for _, id := range ids {
			if int(id) < len(terms) {
				out[j] = append(out[j], terms[id])
			}
		}
	}
	return out
}
