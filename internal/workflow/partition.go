package workflow

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hpa/internal/pario"
	"hpa/internal/tfidf"
)

// nowIfRecording timestamps serial sections only when a recorder is
// attached, keeping the hot path free of clock reads.
func nowIfRecording(ctx *Context) time.Time {
	if ctx.Recorder.Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// recordSerialSince reports a serial section to the recorder, if any.
func recordSerialSince(ctx *Context, start time.Time) {
	if ctx.Recorder.Enabled() {
		ctx.Recorder.Serial(time.Since(start), 0, 0)
	}
}

// This file defines the partitioned dataset contract and the sharded
// operators of the streaming executor. A dataset may flow through a plan as
// document partitions (shards) instead of as one monolith: a Splitter node
// fixes the shard count, PartitionKernel nodes map over shards
// independently, and reductions either gather every shard at once (a plain
// operator taking *Partitions) or absorb shards in completion order
// (StreamReducer). The executor (exec.go) schedules one task per (node,
// partition), so a shard can be several stages ahead of its siblings; the
// only barriers are the reductions the dataflow genuinely requires — in
// TF/IDF, the global document-frequency merge.
//
// Determinism contract: partition payloads are always identified by their
// partition index, never by completion order. Ranges are carved by
// pario.PartitionRange (a pure function of length and shard count), merges
// are index-ordered or commutative, and gathered values present shards in
// index order — so results are bit-identical across shard counts and
// worker counts, which the partition determinism tests assert.

// Partitioned is the dataset contract for sharded values: a fixed number
// of per-partition payloads with a deterministic index order.
type Partitioned interface {
	// NumPartitions returns the shard count.
	NumPartitions() int
	// Partition returns the payload of shard i.
	Partition(i int) Value
}

// Partitions is the gathered (materialized) form of a partitioned dataset:
// every shard payload in partition-index order. The executor delivers it to
// operators that consume a partitioned input whole, regardless of the order
// in which shards completed.
type Partitions struct {
	// Parts holds one payload per shard, indexed by partition.
	Parts []Value
}

// NumPartitions implements Partitioned.
func (p *Partitions) NumPartitions() int { return len(p.Parts) }

// Partition implements Partitioned.
func (p *Partitions) Partition(i int) Value { return p.Parts[i] }

// Splitter is implemented by operators that shard their input: the node's
// output becomes partitioned with a static shard count, and the executor
// runs Split once per shard instead of calling Run.
type Splitter interface {
	Operator
	// PartitionCount returns the shard count; it must be stable across
	// calls and at least 1.
	PartitionCount() int
	// Split produces the payload of partition idx (of total) from the
	// node's gathered input values. It must be safe for concurrent calls
	// with distinct idx.
	Split(ctx *Context, ins []Value, idx, total int) (Value, error)
}

// PartitionKernel is implemented by map operators: when the producer of
// input port 0 is partitioned, the executor runs RunPartition once per
// shard — ins[0] is that shard's payload, ins[1:] are the gathered values
// of the remaining ports — and the node's output is partitioned too. Fed a
// scalar port 0, the node falls back to Run/RunAll like any other
// operator.
type PartitionKernel interface {
	Operator
	// RunPartition transforms one shard. It must be safe for concurrent
	// calls with distinct idx.
	RunPartition(ctx *Context, ins []Value, idx, total int) (Value, error)
}

// StreamReducer is implemented by reduction operators that consume the
// shards of their port-0 input in completion order, as they arrive, instead
// of waiting for the gathered dataset: BeginReduce once the scalar ports
// are available, AbsorbPartition per shard, FinishReduce after the last.
// Implementations must be order-insensitive (shards carry their partition
// index) so the node's output stays deterministic.
type StreamReducer interface {
	Operator
	// BeginReduce allocates the reduction state. ins holds the gathered
	// values of ports 1..n-1 (ins[0] is nil); total is the shard count.
	BeginReduce(ctx *Context, total int, ins []Value) (any, error)
	// AbsorbPartition integrates the payload of partition idx. Calls are
	// serialized by the executor.
	AbsorbPartition(ctx *Context, state any, part Value, idx int) error
	// FinishReduce produces the node output after every shard is absorbed.
	FinishReduce(ctx *Context, state any) (Value, error)
}

// Reflected types of the partitioned dataset contracts.
var (
	partitionsType  = reflect.TypeOf((*Partitions)(nil))
	shardCountsType = reflect.TypeOf((*tfidf.ShardCounts)(nil))
	globalType      = reflect.TypeOf((*tfidf.Global)(nil))
	vectorShardType = reflect.TypeOf((*tfidf.VectorShard)(nil))
	wcShardType     = reflect.TypeOf((*WCShard)(nil))
)

// nodeClass is the executor's scheduling classification of a node.
type nodeClass int

const (
	// classScalar runs as one task once all (gathered) inputs are ready.
	classScalar nodeClass = iota
	// classSplit runs one Split task per shard once its inputs are ready.
	classSplit
	// classMap runs one RunPartition task per shard, each as soon as its
	// shard of the port-0 input and all other ports are ready.
	classMap
	// classStream absorbs port-0 shards in completion order and finishes
	// with one task.
	classStream
	// classLoop runs an IterativeOp: a begin task, then per iteration one
	// task per loop shard plus a reduction-barrier task, repeated until the
	// loop reports done, then a finish task. Output is scalar.
	classLoop
)

// pinfo is the partition classification of one node.
type pinfo struct {
	class nodeClass
	// nparts is the shard count of the node's output (1 for scalar and
	// stream-reduce nodes). For a loop node it is the internal loop shard
	// count — the output itself is scalar.
	nparts int
}

// partitioned reports whether the node's output flows as shards.
func (pi pinfo) partitioned() bool { return pi.class == classSplit || pi.class == classMap }

// partitionInfo classifies every node. It requires an acyclic plan (nodes
// are resolved in topological order so a map node can inherit its
// producer's shard count).
func (p *Plan) partitionInfo(order []*Node) map[string]pinfo {
	info := make(map[string]pinfo, len(order))
	for _, n := range order {
		pi := pinfo{class: classScalar, nparts: 1}
		if it, ok := n.op.(IterativeOp); ok {
			pi.class = classLoop
			pi.nparts = it.LoopShards()
			if pi.nparts < 1 {
				pi.nparts = 1
			}
		} else if s, ok := n.op.(Splitter); ok {
			pi.class = classSplit
			pi.nparts = s.PartitionCount()
			if pi.nparts < 1 {
				pi.nparts = 1
			}
		} else if e, ok := p.producerOf(n.name, 0); ok {
			prod := info[e.From]
			if prod.partitioned() {
				if _, ok := n.op.(PartitionKernel); ok {
					pi.class = classMap
					pi.nparts = prod.nparts
				} else if _, ok := n.op.(StreamReducer); ok {
					pi.class = classStream
				}
			}
		}
		info[n.name] = pi
	}
	return info
}

// consumesPerPart reports whether edge e delivers individual shards to its
// consumer (rather than a gathered value), given the classification.
func consumesPerPart(info map[string]pinfo, p *Plan, e Edge) bool {
	if !info[e.From].partitioned() || e.Port != 0 {
		return false
	}
	c := info[e.To].class
	return c == classMap || c == classStream
}

// PartitionOp shards a document source: the scan's Source is split into
// contiguous SubSource ranges carved by pario.PartitionRange, turning every
// downstream PartitionKernel into a per-shard map.
type PartitionOp struct {
	// Shards is the partition count; 0 selects an automatic count derived
	// from runtime.GOMAXPROCS(0) — twice the processor count, so shards
	// over-decompose and work stealing can rebalance a straggler shard
	// (document sizes are heavy-tailed; with exactly one shard per worker
	// the slowest shard gates every reduction). Resolved once, so the
	// count is stable for the plan's lifetime.
	Shards int
	// ByteWeighted selects byte-balanced shard boundaries instead of
	// count-balanced ones: when the source knows its document sizes
	// (pario.Sized), boundaries are carved so every shard holds close to
	// total/shards bytes (within one document), which flattens the
	// straggler tail on heavy-tailed document sizes. Sources without sizes
	// fall back to count balance. Boundaries remain a pure function of the
	// corpus and shard count, so results stay bit-identical.
	ByteWeighted bool

	once     sync.Once
	resolved int

	wonce  sync.Once
	bounds []int // byte-weighted boundaries, resolved on first Split
}

// Name implements Operator.
func (o *PartitionOp) Name() string { return "partition" }

// Inputs implements TypedOperator.
func (o *PartitionOp) Inputs() []reflect.Type { return []reflect.Type{sourceType} }

// Output implements TypedOperator: the per-partition payload is itself a
// document source.
func (o *PartitionOp) Output() reflect.Type { return sourceType }

// PartitionCount implements Splitter.
func (o *PartitionOp) PartitionCount() int {
	o.once.Do(func() {
		o.resolved = o.Shards
		if o.resolved <= 0 {
			if p := runtime.GOMAXPROCS(0); p > 1 {
				o.resolved = 2 * p
			} else {
				o.resolved = 1
			}
		}
	})
	return o.resolved
}

// Split implements Splitter: shard idx is the [idx*n/total, (idx+1)*n/total)
// range of the input source.
func (o *PartitionOp) Split(ctx *Context, ins []Value, idx, total int) (Value, error) {
	src, ok := ins[0].(pario.Source)
	if !ok {
		return nil, fmt.Errorf("%w: partition wants pario.Source, got %T", ErrType, ins[0])
	}
	if o.ByteWeighted {
		if sized, isSized := src.(pario.Sized); isSized {
			o.wonce.Do(func() {
				weights := make([]int64, src.Len())
				for i := range weights {
					weights[i] = sized.DocBytes(i)
				}
				o.bounds = pario.WeightedBoundaries(weights, total)
			})
			return &pario.SubSource{Src: src, Lo: o.bounds[idx], Hi: o.bounds[idx+1]}, nil
		}
	}
	return pario.Partition(src, total, idx), nil
}

// Run implements Operator. A PartitionOp node is always scheduled through
// Split; Run exists only to satisfy the interface and passes the source
// through unchanged (a 1-shard identity).
func (o *PartitionOp) Run(ctx *Context, in Value) (Value, error) { return in, nil }

// shardReaders divides the pool's workers among concurrently running
// shards: the per-shard read parallelism that keeps total concurrency at
// the pool size.
func shardReaders(ctx *Context, total int) int {
	r := ctx.Pool.Workers() / total
	if r < 1 {
		r = 1
	}
	return r
}

// tfPairSeq numbers TF/IDF map+transform operator pairs process-wide, so
// worker-side count-cache sessions never collide across plans.
var tfPairSeq atomic.Uint64

// tfShipPair is coordinator-side state shared by the TFMapOp and
// TransformOp of one partitioned TF/IDF expansion — the channel through
// which the transform stage learns where a shard's phase-1 counts already
// live. When a count task ships, the worker caches the live ShardCounts
// under the pair's per-shard session key; the pair records the shard as
// remotely counted, and the matching transform task then ships the session
// key (plus the shared affinity key routing it to the same worker) instead
// of re-serializing every document's term counts. Session keys are a pure
// function of (pair id, shard index) and shard contents are deterministic,
// so re-running a plan simply overwrites worker cache entries with
// identical content.
//
// The pair also counts how many times the global term table actually
// shipped inline (cache misses answered with a resend) — the observable
// behind the "at most one global ship per (worker, corpus hash)" contract.
type tfShipPair struct {
	id string

	mu          sync.Mutex
	counted     map[int]bool
	globalShips int
}

// newTFShipPair allocates the shared state of one map+transform pair.
func newTFShipPair() *tfShipPair {
	return &tfShipPair{
		id:      fmt.Sprintf("tf-%d-%d", os.Getpid(), tfPairSeq.Add(1)),
		counted: make(map[int]bool),
	}
}

// countSession names shard idx's worker-side counts-cache entry.
func (p *tfShipPair) countSession(idx int) string {
	return fmt.Sprintf("%s-%d", p.id, idx)
}

// markCounted records that shard idx's counts were cached by a worker.
func (p *tfShipPair) markCounted(idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counted[idx] = true
}

// wasCounted reports whether shard idx's counts live on a worker.
func (p *tfShipPair) wasCounted(idx int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counted[idx]
}

// noteGlobalShip counts one inlined global-table ship (a resend after a
// worker's content-hash cache miss).
func (p *tfShipPair) noteGlobalShip() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.globalShips++
}

// globalShipCount returns how many times the global table shipped inline.
func (p *tfShipPair) globalShipCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.globalShips
}

// TFMapOp is the phase-1 map kernel of the partitioned TF/IDF operator:
// one corpus shard in, that shard's per-document term frequencies and
// shard-local document-frequency dictionary out. All shards run
// independently — the embarrassingly parallel part of the paper's TF/IDF.
type TFMapOp struct {
	// Opts configures tokenization and dictionaries, as in TFIDFOp.
	Opts tfidf.Options
	// pair, when non-nil, links this map stage to its transform stage for
	// count→transform shipping affinity (see tfShipPair). Standalone uses
	// of the operator leave it nil and ship counts inline, as before.
	pair *tfShipPair
}

// Name implements Operator.
func (o *TFMapOp) Name() string { return "tf-map" }

// Inputs implements TypedOperator.
func (o *TFMapOp) Inputs() []reflect.Type { return []reflect.Type{sourceType} }

// Output implements TypedOperator.
func (o *TFMapOp) Output() reflect.Type { return shardCountsType }

// RunPartition implements PartitionKernel: pario.Source (one shard) ->
// *tfidf.ShardCounts.
func (o *TFMapOp) RunPartition(ctx *Context, ins []Value, idx, total int) (Value, error) {
	src, ok := ins[0].(pario.Source)
	if !ok {
		return nil, fmt.Errorf("%w: tf-map wants pario.Source, got %T", ErrType, ins[0])
	}
	opts := o.Opts
	opts.Recorder = ctx.Recorder
	opts.Ctx = ctx.Ctx
	var sc *tfidf.ShardCounts
	err := ctx.Breakdown.TimeSpanErr(tfidf.PhaseInputWC, func() error {
		ctx.Recorder.BeginPhase(tfidf.PhaseInputWC)
		var err error
		sc, err = tfidf.CountShard(src, shardReaders(ctx, total), opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// Run implements Operator: the whole source as a single shard.
func (o *TFMapOp) Run(ctx *Context, in Value) (Value, error) {
	return o.RunPartition(ctx, []Value{in}, 0, 1)
}

// DFReduceOp is the reduction of the partitioned TF/IDF operator: every
// shard's document-frequency dictionary is tree-merged (par.TreeReduce)
// into the global term table with lexicographically assigned IDs — the
// workflow's serial point, in the paper's sense that only reductions and
// output are serial.
type DFReduceOp struct {
	// Opts matches the map kernels' options (dictionary kind).
	Opts tfidf.Options
}

// Name implements Operator.
func (o *DFReduceOp) Name() string { return "df-reduce" }

// Inputs implements TypedOperator: the gathered shard counts.
func (o *DFReduceOp) Inputs() []reflect.Type { return []reflect.Type{partitionsType} }

// Output implements TypedOperator.
func (o *DFReduceOp) Output() reflect.Type { return globalType }

// Run implements Operator: *Partitions of *tfidf.ShardCounts (or a single
// *tfidf.ShardCounts) -> *tfidf.Global.
func (o *DFReduceOp) Run(ctx *Context, in Value) (Value, error) {
	var shards []*tfidf.ShardCounts
	switch v := in.(type) {
	case *Partitions:
		shards = make([]*tfidf.ShardCounts, 0, len(v.Parts))
		for _, part := range v.Parts {
			sc, ok := part.(*tfidf.ShardCounts)
			if !ok {
				return nil, fmt.Errorf("%w: df-reduce wants *tfidf.ShardCounts shards, got %T", ErrType, part)
			}
			shards = append(shards, sc)
		}
	case *tfidf.ShardCounts:
		shards = []*tfidf.ShardCounts{v}
	default:
		return nil, fmt.Errorf("%w: df-reduce wants *Partitions or *tfidf.ShardCounts, got %T", ErrType, in)
	}
	var g *tfidf.Global
	ctx.Breakdown.Time(tfidf.PhaseTransform, func() {
		ctx.Recorder.BeginPhase(tfidf.PhaseTransform)
		start := nowIfRecording(ctx)
		g = tfidf.MergeShards(shards, ctx.Pool, o.Opts)
		recordSerialSince(ctx, start)
	})
	return g, nil
}

// TransformOp is the phase-2 map kernel of the partitioned TF/IDF
// operator: one shard's term counts plus the global table in, that shard's
// score vectors out. Shards transform independently and as soon as the
// reduction delivers the table.
type TransformOp struct {
	// Opts carries Normalize and the recorder wiring.
	Opts tfidf.Options
	// pair, when non-nil, is the link to the map stage (see tfShipPair):
	// shards it marked as remotely counted ship by session key, and the
	// global term table ships by content hash with the body pulled only on
	// a worker cache miss.
	pair *tfShipPair
}

// Name implements Operator.
func (o *TransformOp) Name() string { return "transform" }

// Inputs implements TypedOperator: port 0 is the (partitioned) shard
// counts, port 1 the global term table.
func (o *TransformOp) Inputs() []reflect.Type {
	return []reflect.Type{shardCountsType, globalType}
}

// Output implements TypedOperator.
func (o *TransformOp) Output() reflect.Type { return vectorShardType }

// RunPartition implements PartitionKernel: (*tfidf.ShardCounts,
// *tfidf.Global) -> *tfidf.VectorShard.
func (o *TransformOp) RunPartition(ctx *Context, ins []Value, idx, total int) (Value, error) {
	sc, ok := ins[0].(*tfidf.ShardCounts)
	if !ok {
		return nil, fmt.Errorf("%w: transform wants *tfidf.ShardCounts, got %T", ErrType, ins[0])
	}
	g, ok := ins[1].(*tfidf.Global)
	if !ok {
		return nil, fmt.Errorf("%w: transform wants *tfidf.Global, got %T", ErrType, ins[1])
	}
	opts := o.Opts
	opts.Recorder = ctx.Recorder
	var vs *tfidf.VectorShard
	ctx.Breakdown.TimeSpan(tfidf.PhaseTransform, func() {
		ctx.Recorder.BeginPhase(tfidf.PhaseTransform)
		vs = tfidf.TransformShard(g, sc, ctx.Pool, opts)
	})
	return vs, nil
}

// RunAll implements MultiOperator: the scalar fallback treats the whole
// input as a single shard.
func (o *TransformOp) RunAll(ctx *Context, ins []Value) (Value, error) {
	return o.RunPartition(ctx, ins, 0, 1)
}

// Run implements Operator; a two-port node is never dispatched through it.
func (o *TransformOp) Run(ctx *Context, in Value) (Value, error) {
	return nil, fmt.Errorf("workflow: transform requires both input ports")
}

// GatherOp assembles the vector shards into the final *tfidf.Result. It is
// a StreamReducer: each shard is installed into its [Lo, Hi) slot the
// moment it completes — and its per-document norms, which K-Means
// assignment needs, are collected shard-by-shard — so assembly overlaps
// the still-running transforms of other shards.
type GatherOp struct {
	// Opts is carried for symmetry with the other TF/IDF stages.
	Opts tfidf.Options
}

// gatherState is the in-progress assembly.
type gatherState struct {
	res *tfidf.Result
}

// Name implements Operator.
func (o *GatherOp) Name() string { return "gather" }

// Inputs implements TypedOperator: port 0 the (partitioned) vector shards,
// port 1 the global table.
func (o *GatherOp) Inputs() []reflect.Type {
	return []reflect.Type{vectorShardType, globalType}
}

// Output implements TypedOperator.
func (o *GatherOp) Output() reflect.Type { return tfidfResultType }

// BeginReduce implements StreamReducer.
func (o *GatherOp) BeginReduce(ctx *Context, total int, ins []Value) (any, error) {
	g, ok := ins[1].(*tfidf.Global)
	if !ok {
		return nil, fmt.Errorf("%w: gather wants *tfidf.Global, got %T", ErrType, ins[1])
	}
	res := tfidf.NewResultShell(g)
	res.Norms = make([]float64, g.NumDocs)
	return &gatherState{res: res}, nil
}

// AbsorbPartition implements StreamReducer.
func (o *GatherOp) AbsorbPartition(ctx *Context, state any, part Value, idx int) error {
	vs, ok := part.(*tfidf.VectorShard)
	if !ok {
		return fmt.Errorf("%w: gather wants *tfidf.VectorShard shards, got %T", ErrType, part)
	}
	st := state.(*gatherState)
	ctx.Breakdown.TimeSpan(tfidf.PhaseTransform, func() {
		st.res.AbsorbShard(vs)
		copy(st.res.Norms[vs.Lo:vs.Hi], vs.Norms)
	})
	return nil
}

// FinishReduce implements StreamReducer.
func (o *GatherOp) FinishReduce(ctx *Context, state any) (Value, error) {
	return state.(*gatherState).res, nil
}

// RunAll implements MultiOperator: the scalar fallback absorbs a single
// shard (or a gathered *Partitions) directly.
func (o *GatherOp) RunAll(ctx *Context, ins []Value) (Value, error) {
	var parts []Value
	switch v := ins[0].(type) {
	case *Partitions:
		parts = v.Parts
	default:
		parts = []Value{v}
	}
	state, err := o.BeginReduce(ctx, len(parts), ins)
	if err != nil {
		return nil, err
	}
	for i, part := range parts {
		if err := o.AbsorbPartition(ctx, state, part, i); err != nil {
			return nil, err
		}
	}
	return o.FinishReduce(ctx, state)
}

// Run implements Operator; a two-port node is never dispatched through it.
func (o *GatherOp) Run(ctx *Context, in Value) (Value, error) {
	return nil, fmt.Errorf("workflow: gather requires both input ports")
}
