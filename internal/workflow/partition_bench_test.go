package workflow

import (
	"fmt"
	"runtime"
	"testing"

	"hpa/internal/corpus"
	"hpa/internal/dict"
	"hpa/internal/kmeans"
	"hpa/internal/par"
	"hpa/internal/tfidf"
)

// BenchmarkPlanPartitioned compares the scan→tfidf dataflow under the
// bulk-synchronous executor (one monolithic operator node) against
// partitioned streaming execution at 1 and N shards. On GOMAXPROCS>1 the
// partitioned plan wins on the phase-1 path: shard-local document-frequency
// dictionaries replace the lock-striped global table and the final merge
// runs as a parallel tree (par.TreeReduce) instead of a serial
// finalization; on a single processor the same merge is pure overhead, so
// the 1-shard and bulk variants bound it. Run with
//
//	go test ./internal/workflow -run '^$' -bench PlanPartitioned -benchtime 5x
//
// and record the output as the BENCH_*.json baseline for regression
// comparisons.
// BenchmarkPlanIterative compares the full TF/IDF→K-Means dataflow with
// the bulk K-Means operator against the partitioned iterative loop at the
// automatic shard count: per-shard assignment tasks behind a
// per-iteration reduction barrier versus the monolithic chunk-parallel
// Step. On GOMAXPROCS>1 the loop overlaps assignment shards across the
// pool with a deterministic ordered reduce; on a single processor the
// auto count resolves to one shard, so the bulk-vs-loop gap bounds the
// loop machinery overhead (begin/barrier/finish tasks per iteration).
// Run with
//
//	go test ./internal/workflow -run '^$' -bench PlanIterative -benchtime 5x
//
// and record the output as BENCH_iterative.json.
func BenchmarkPlanIterative(b *testing.B) {
	c := corpus.Generate(corpus.Mix().Scaled(0.05), nil)
	auto := (&KMAssignOp{}).LoopShards()
	cases := []struct {
		name   string
		shards int
	}{
		{"bulk", 0},
		{fmt.Sprintf("loop=%d(auto)", auto), -1},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			pool := par.NewPool(runtime.GOMAXPROCS(0))
			defer pool.Close()
			b.SetBytes(c.Bytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := NewPlan().
					Add("scan", &SourceOp{Src: c.Source(nil)}).
					Add("tfidf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree, Normalize: true}}).
					Add("kmeans", &KMeansOp{Opts: kmeans.Options{K: 8, Seed: 42}}).
					Connect("scan", "tfidf").
					Connect("tfidf", "kmeans")
				if bc.shards < 0 {
					plan = plan.Apply(PartitionRule(0)) // auto
				}
				ctx := NewContext(pool)
				outs, err := plan.Run(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(outs) != 1 {
					b.Fatalf("expected one sink, got %d", len(outs))
				}
			}
		})
	}
}

func BenchmarkPlanPartitioned(b *testing.B) {
	c := corpus.Generate(corpus.Mix().Scaled(0.05), nil)
	auto := (&PartitionOp{}).PartitionCount()
	cases := []struct {
		name   string
		shards int
	}{
		{"bulk", 0},
		{"shards=1", 1},
		{fmt.Sprintf("shards=%d(auto)", auto), -1},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			pool := par.NewPool(runtime.GOMAXPROCS(0))
			defer pool.Close()
			b.SetBytes(c.Bytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := NewPlan().
					Add("scan", &SourceOp{Src: c.Source(nil)}).
					Add("tfidf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree, Normalize: true}}).
					Connect("scan", "tfidf")
				switch {
				case bc.shards > 0:
					plan = plan.Apply(PartitionRule(bc.shards))
				case bc.shards < 0:
					plan = plan.Apply(PartitionRule(0)) // auto
				}
				ctx := NewContext(pool)
				outs, err := plan.Run(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(outs) != 1 {
					b.Fatalf("expected one sink, got %d", len(outs))
				}
			}
		})
	}
}
