package workflow

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"hpa/internal/dict"
	"hpa/internal/tfidf"
)

// refTFKM runs the bulk-synchronous (unpartitioned) workflow as the
// determinism reference.
func refTFKM(t *testing.T, cfg TFKMConfig) *TFKMReport {
	t.Helper()
	cfg.Shards = 0
	ctx := testCtx(t, 4)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// sameScores asserts bit-identical TF/IDF results (terms, document
// frequencies, every vector component) and cluster assignments.
func sameScores(t *testing.T, label string, want, got *TFKMReport) {
	t.Helper()
	w, g := want.Clustering.TFIDF, got.Clustering.TFIDF
	if w == nil || g == nil {
		t.Fatalf("%s: missing TF/IDF result (want %v, got %v)", label, w != nil, g != nil)
	}
	if !reflect.DeepEqual(w.Terms, g.Terms) {
		t.Fatalf("%s: term tables differ (%d vs %d terms)", label, len(w.Terms), len(g.Terms))
	}
	if !reflect.DeepEqual(w.DF, g.DF) {
		t.Fatalf("%s: document frequencies differ", label)
	}
	if len(w.Vectors) != len(g.Vectors) {
		t.Fatalf("%s: %d vs %d vectors", label, len(w.Vectors), len(g.Vectors))
	}
	for i := range w.Vectors {
		wv, gv := &w.Vectors[i], &g.Vectors[i]
		if !reflect.DeepEqual(wv.Idx, gv.Idx) {
			t.Fatalf("%s: doc %d: index sets differ", label, i)
		}
		for j := range wv.Val {
			if math.Float64bits(wv.Val[j]) != math.Float64bits(gv.Val[j]) {
				t.Fatalf("%s: doc %d component %d: %v != %v (not bit-identical)",
					label, i, j, wv.Val[j], gv.Val[j])
			}
		}
	}
	if !reflect.DeepEqual(w.DocNames, g.DocNames) {
		t.Fatalf("%s: document names differ", label)
	}
	if !reflect.DeepEqual(want.Clustering.Result.Assign, got.Clustering.Result.Assign) {
		t.Fatalf("%s: cluster assignments differ", label)
	}
}

// TestPartitionedBitIdenticalAcrossShardCountsAndDicts is the determinism
// suite: sharded execution must reproduce the bulk-synchronous scores and
// assignments exactly, for every dictionary kind and shard counts that do
// and do not divide the corpus evenly.
func TestPartitionedBitIdenticalAcrossShardCountsAndDicts(t *testing.T) {
	for _, kind := range []dict.Kind{dict.Tree, dict.Hash, dict.NodeTree} {
		cfg := baseCfg(Merged)
		cfg.TFIDF.DictKind = kind
		ref := refTFKM(t, cfg)
		if ref.Clustering.TFIDF == nil {
			t.Fatal("reference run dropped the TF/IDF result")
		}
		for _, shards := range []int{1, 4, 7} {
			label := fmt.Sprintf("dict=%s shards=%d", kind, shards)
			scfg := cfg
			scfg.Shards = shards
			ctx := testCtx(t, 4)
			rep, err := RunTFKM(testCorpus().Source(nil), ctx, scfg)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sameScores(t, label, ref, rep)
			if rep.DictFootprint <= 0 {
				t.Errorf("%s: dictionary footprint not captured", label)
			}
		}
	}
}

// TestPartitionedDiscreteComposesWithFusionBoundary checks that
// PartitionRule composes with the discrete plan's materialize/load pair:
// the sharded gather feeds the ARFF materialization, the matrix round-trips
// through disk, and assignments still match the bulk discrete run.
func TestPartitionedDiscreteComposesWithFusionBoundary(t *testing.T) {
	cfg := baseCfg(Discrete)
	ref := refTFKM(t, cfg)
	scfg := cfg
	scfg.Shards = 3
	ctx := testCtx(t, 4)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Clustering.Result.Assign, rep.Clustering.Result.Assign) {
		t.Fatal("partitioned discrete assignments differ from bulk discrete")
	}
	for _, ph := range []string{tfidf.PhaseOutput, "kmeans-input"} {
		if rep.Breakdown.Get(ph) <= 0 {
			t.Errorf("discrete partitioned run missing phase %s", ph)
		}
	}
}

// TestPartitionedBreakdownKeepsFigurePhaseKeys: per-shard timings must
// aggregate into the same Breakdown keys, in the same order, as the
// monolithic merged run.
func TestPartitionedBreakdownKeepsFigurePhaseKeys(t *testing.T) {
	cfg := baseCfg(Merged)
	cfg.Shards = 4
	ctx := testCtx(t, 4)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{tfidf.PhaseInputWC, tfidf.PhaseTransform, "kmeans", PhaseOutput}
	if got := rep.Breakdown.Phases(); !reflect.DeepEqual(got, want) {
		t.Fatalf("phase keys = %v, want %v", got, want)
	}
	for _, ph := range want {
		if rep.Breakdown.Get(ph) <= 0 {
			t.Errorf("phase %s has no recorded time", ph)
		}
	}
}

// TestPartitionRuleExplainMarksShardBoundaries: Plan.Explain must surface
// partition boundaries — per-shard edges as -[xN]->, gathering reductions
// as =[xN]=>.
func TestPartitionRuleExplainMarksShardBoundaries(t *testing.T) {
	cfg := baseCfg(Merged)
	cfg.Shards = 4
	plan := TFKMPlan(testCorpus().Source(nil), cfg)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	got := plan.Explain()
	for _, want := range []string{
		"scan -> scan.shards",
		"scan.shards -[x4]-> tfidf.map",
		"tfidf.map =[x4]=> tfidf.df",
		"tfidf.map -[x4]-> tfidf.transform",
		"tfidf.df -> tfidf.transform:1",
		"tfidf.transform -[x4]-> tfidf.gather",
		"tfidf.df -> tfidf.gather:1",
		// The iterative K-Means stages: the transform's vector shards feed
		// the assignment loop directly (gathered, shard-aligned norms), the
		// gather's result joins at the reduce, and the loop edge carries the
		// iterative shard marker.
		"tfidf.transform =[x4]=> kmeans.assign",
		"tfidf.gather -> kmeans.reduce:1",
		"kmeans.assign ~[x4]~> kmeans.reduce",
		"kmeans.reduce -> output",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q:\n%s", want, got)
		}
	}
}

// TestExplainRendersAnnotations: node and plan annotations — the
// optimizer's decision records — render as "#"-prefixed lines after the
// edges, and survive the rewrite rules, including PartitionRule's node
// expansion (the replaced node's note moves to its fragment entry).
func TestExplainRendersAnnotations(t *testing.T) {
	cfg := baseCfg(Discrete)
	plan := TFKMPlan(testCorpus().Source(nil), cfg).
		Annotate("tfidf", "dict=map-arena (est 12ms)").
		AnnotatePlan("optimizer: test decision record")
	if got := plan.Annotation("tfidf"); got != "dict=map-arena (est 12ms)" {
		t.Fatalf("Annotation = %q", got)
	}
	explain := plan.Explain()
	for _, want := range []string{
		"# optimizer: test decision record",
		"# tfidf: dict=map-arena (est 12ms)",
	} {
		if !strings.Contains(explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, explain)
		}
	}
	// Annotations precede no edge line: all "#" lines come after the edges.
	sawNote := false
	for _, line := range strings.Split(explain, "\n") {
		if strings.HasPrefix(line, "#") {
			sawNote = true
		} else if sawNote {
			t.Fatalf("edge line after annotations:\n%s", explain)
		}
	}
	// Fusion keeps both notes; partitioning moves the tfidf note onto the
	// expanded map node and keeps the shard markers.
	rewritten := plan.Apply(FuseRule(), PartitionRule(4))
	if err := rewritten.Validate(); err != nil {
		t.Fatal(err)
	}
	explain = rewritten.Explain()
	for _, want := range []string{
		"scan.shards -[x4]-> tfidf.map",
		"tfidf.map =[x4]=> tfidf.df",
		"# optimizer: test decision record",
		"# tfidf.map: dict=map-arena (est 12ms)",
	} {
		if !strings.Contains(explain, want) {
			t.Errorf("rewritten Explain missing %q:\n%s", want, explain)
		}
	}
	// Repeated annotation appends rather than replaces.
	p2 := NewPlan().Add("n", stringSource("n", "x")).Annotate("n", "a").Annotate("n", "b")
	if got := p2.Annotation("n"); got != "a; b" {
		t.Fatalf("appended annotation = %q", got)
	}
}

// TestPipelineStringMarksPartitions: the linear renderer marks shard
// sections the same way.
func TestPipelineStringMarksPartitions(t *testing.T) {
	p := NewPipeline(&PartitionOp{Shards: 3}, &TFMapOp{}, &DFReduceOp{})
	if got, want := p.String(), "partition -[x3]-> tf-map =[x3]=> df-reduce"; got != want {
		t.Fatalf("Pipeline.String() = %q, want %q", got, want)
	}
}

// TestPartitionedWordCountMatchesMonolithic: the sharded word count is a
// second instantiation of the map/reduce decomposition and must agree with
// the monolithic operator exactly.
func TestPartitionedWordCountMatchesMonolithic(t *testing.T) {
	src := testCorpus().Source(nil)
	mono := NewPlan().
		Add("scan", &SourceOp{Src: src}).
		Add("wordcount", &WordCountOp{DictKind: dict.Tree}).
		Connect("scan", "wordcount")
	sharded := mono.Apply(PartitionRule(3))
	if name := "wordcount.map"; sharded.Node(name) == nil {
		t.Fatalf("PartitionRule did not expand wordcount: %s", sharded.Explain())
	}

	ctx := testCtx(t, 4)
	mouts, err := mono.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	souts, err := sharded.Run(testCtx(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	mwc := mouts["wordcount"].(*WordCounts)
	swc := souts["wordcount.reduce"].(*WordCounts)
	if mwc.TotalTokens != swc.TotalTokens {
		t.Fatalf("token totals differ: %d vs %d", mwc.TotalTokens, swc.TotalTokens)
	}
	if !reflect.DeepEqual(mwc.Words, swc.Words) || !reflect.DeepEqual(mwc.Counts, swc.Counts) {
		t.Fatal("sharded word counts differ from monolithic")
	}
}

// TestDiamondPlanDeliversToEveryConsumer is the regression test for
// per-edge delivery of multi-consumer outputs: a shared scan feeds two
// consumers, and both must receive the dataset even though intermediates
// are released once delivered.
func TestDiamondPlanDeliversToEveryConsumer(t *testing.T) {
	slow := &fnOp{name: "slow", ins: []reflect.Type{stringType}, out: stringType,
		fn: func(_ *Context, ins []Value) (Value, error) {
			time.Sleep(20 * time.Millisecond) // outlive the fast branch
			if ins[0] == nil {
				return nil, fmt.Errorf("slow consumer saw released input")
			}
			return "slow:" + ins[0].(string), nil
		}}
	fast := &fnOp{name: "fast", ins: []reflect.Type{stringType}, out: stringType,
		fn: func(_ *Context, ins []Value) (Value, error) {
			if ins[0] == nil {
				return nil, fmt.Errorf("fast consumer saw released input")
			}
			return "fast:" + ins[0].(string), nil
		}}
	plan := NewPlan().
		Add("src", stringSource("src", "data")).
		Add("fast", fast).
		Add("slow", slow).
		Connect("src", "fast").
		Connect("src", "slow")
	outs, err := plan.Run(testCtx(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if outs["fast"] != "fast:data" || outs["slow"] != "slow:data" {
		t.Fatalf("diamond outputs = %v", outs)
	}
}

// testSplitter is a zero-input splitter emitting the partition index.
type testSplitter struct{ n int }

func (s *testSplitter) Name() string           { return "split" }
func (s *testSplitter) Inputs() []reflect.Type { return nil }
func (s *testSplitter) Output() reflect.Type   { return anyType }
func (s *testSplitter) PartitionCount() int    { return s.n }
func (s *testSplitter) Run(*Context, Value) (Value, error) {
	return nil, fmt.Errorf("splitter dispatched through Run")
}
func (s *testSplitter) Split(_ *Context, _ []Value, idx, _ int) (Value, error) {
	return idx, nil
}

// testKernel applies fn per shard.
type testKernel struct {
	name string
	fn   func(idx int, in Value) (Value, error)
}

func (k *testKernel) Name() string           { return k.name }
func (k *testKernel) Inputs() []reflect.Type { return []reflect.Type{anyType} }
func (k *testKernel) Output() reflect.Type   { return anyType }
func (k *testKernel) Run(ctx *Context, in Value) (Value, error) {
	return k.fn(0, in)
}
func (k *testKernel) RunPartition(_ *Context, ins []Value, idx, _ int) (Value, error) {
	return k.fn(idx, ins[0])
}

// TestShardsPipelineAcrossMapStages asserts the executor's partition-task
// scheduling: with no reduction between two map stages, shard 0 must be
// able to enter stage B while shard 1 is still inside stage A. Stage A's
// shard 1 blocks until stage B's shard 0 reports in; under bulk-synchronous
// (whole-node) scheduling that handshake would deadlock and time out.
func TestShardsPipelineAcrossMapStages(t *testing.T) {
	b0Started := make(chan struct{})
	stageA := &testKernel{name: "stage-a", fn: func(idx int, in Value) (Value, error) {
		if idx == 1 {
			select {
			case <-b0Started:
			case <-time.After(10 * time.Second):
				return nil, fmt.Errorf("shard 0 never reached stage B while shard 1 was in stage A")
			}
		}
		return in, nil
	}}
	stageB := &testKernel{name: "stage-b", fn: func(idx int, in Value) (Value, error) {
		if idx == 0 {
			close(b0Started)
		}
		return in, nil
	}}
	gather := &fnOp{name: "sink", ins: []reflect.Type{partitionsType}, out: anyType,
		fn: func(_ *Context, ins []Value) (Value, error) {
			parts := ins[0].(*Partitions)
			got := make([]int, parts.NumPartitions())
			for i := range got {
				got[i] = parts.Partition(i).(int)
			}
			return got, nil
		}}
	plan := NewPlan().
		Add("split", &testSplitter{n: 2}).
		Add("stage-a", stageA).
		Add("stage-b", stageB).
		Add("sink", gather).
		Connect("split", "stage-a").
		Connect("stage-a", "stage-b").
		Connect("stage-b", "sink")
	outs, err := plan.Run(testCtx(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := outs["sink"].([]int); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("gathered shards = %v, want [0 1] (index order, not completion order)", got)
	}
}

// sumStream is a single-port stream reducer summing its int shards. Its
// only input arrives shard-by-shard, so it has no gathered ports at all —
// the executor must BeginReduce it at startup, not wait for a scalar
// delivery that never comes.
type sumStream struct{}

func (o *sumStream) Name() string                              { return "sumStream" }
func (o *sumStream) Inputs() []reflect.Type                    { return []reflect.Type{reflect.TypeOf(0)} }
func (o *sumStream) Output() reflect.Type                      { return reflect.TypeOf(0) }
func (o *sumStream) Run(ctx *Context, in Value) (Value, error) { return in, nil }
func (o *sumStream) BeginReduce(ctx *Context, total int, ins []Value) (any, error) {
	s := 0
	return &s, nil
}
func (o *sumStream) AbsorbPartition(ctx *Context, state any, part Value, idx int) error {
	*state.(*int) += part.(int)
	return nil
}
func (o *sumStream) FinishReduce(ctx *Context, state any) (Value, error) {
	return *state.(*int), nil
}

// TestSinglePortStreamReducer: a stream reducer whose port 0 is its only
// input must still be begun, absorb every shard and finish — regression
// test for the executor only seeding zero-arity nodes at startup, which
// left such reducers pending forever and dropped their sink output.
func TestSinglePortStreamReducer(t *testing.T) {
	p := NewPlan().
		Add("src", &testSplitter{n: 4}).
		Add("sum", &sumStream{}).
		Connect("src", "sum")
	outs, err := p.Run(testCtx(t, 2))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got, ok := outs["sum"]
	if !ok {
		t.Fatalf("sum output missing from sinks: %v", outs)
	}
	if got != 0+1+2+3 {
		t.Fatalf("got %v, want 6", got)
	}
}

// TestPartitionedObserverSeesGatheredValues: Observe fires once per node;
// partitioned nodes report their gathered dataset.
func TestPartitionedObserverSeesGatheredValues(t *testing.T) {
	cfg := baseCfg(Merged)
	cfg.Shards = 4
	ctx := testCtx(t, 4)
	seen := map[string]int{}
	var gatherOut Value
	ctx.Observe = func(op Operator, out Value) {
		seen[op.Name()]++
		if op.Name() == "gather" {
			gatherOut = out
		}
	}
	if _, err := RunTFKM(testCorpus().Source(nil), ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("operator %s observed %d times", name, n)
		}
	}
	if seen["tf-map"] != 1 || seen["df-reduce"] != 1 || seen["transform"] != 1 {
		t.Errorf("shard stages not observed: %v", seen)
	}
	if _, ok := gatherOut.(*tfidf.Result); !ok {
		t.Errorf("gather observed as %T, want *tfidf.Result", gatherOut)
	}
}

// TestPartitionedValidationRejectsShardLeak: a partitioned producer must
// not connect to an operator expecting the monolithic dataset.
func TestPartitionedValidationRejectsShardLeak(t *testing.T) {
	plan := NewPlan().
		Add("scan", &SourceOp{Src: testCorpus().Source(nil)}).
		Add("partition", &PartitionOp{Shards: 2}).
		Add("tf-map", &TFMapOp{}).
		Add("kmeans", &KMeansOp{}). // wants Vectorized, not shards
		Connect("scan", "partition").
		Connect("partition", "tf-map").
		Connect("tf-map", "kmeans")
	err := plan.Validate()
	if err == nil {
		t.Fatal("shard leak into kmeans validated")
	}
	if !strings.Contains(err.Error(), "kmeans") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
