package workflow

import (
	"fmt"
	"reflect"
	"strings"

	"hpa/internal/pario"
)

// TypedOperator is implemented by operators that declare their input and
// output ports, enabling Plan.Validate to type-check a plan before anything
// runs. Inputs returns one type per input port (nil or empty for a source
// operator); Output returns the dataset type the operator produces. A port
// type may be an interface type, in which case any producer whose output
// implements it connects.
//
// Operators that do not implement TypedOperator are treated as having a
// single dynamically-typed input and a dynamically-typed output; their edges
// always validate and mismatches surface at run time, as in the original
// linear Pipeline.
type TypedOperator interface {
	Operator
	Inputs() []reflect.Type
	Output() reflect.Type
}

// MultiOperator is implemented by operators with more than one input port.
// The executor gathers the value of every port before calling RunAll; ins[i]
// is the dataset delivered to port i. Operator.Run is never called for a
// node whose declared arity exceeds one.
type MultiOperator interface {
	Operator
	RunAll(ctx *Context, ins []Value) (Value, error)
}

// Vectorized is the dataset contract accepted by KMeansOp: a matrix-shaped
// dataset exposing its term dimensionality. Both *tfidf.Result (the fused
// in-memory intermediate) and *Matrix (loaded back from ARFF) implement it.
type Vectorized interface{ Dim() int }

// synthetic marks operators the engine inserts on its own (the literal
// input node the Pipeline adapter prepends). They are invisible to Observe.
type synthetic interface{ isSynthetic() }

// scanner is implemented by source operators whose work can be shared: two
// zero-input nodes with equal ScanKey read the same underlying data, so the
// SharedScanRule rewrites consumers of one onto the other.
type scanner interface{ ScanKey() any }

// Reflected port types used by the built-in operators.
var (
	anyType        = reflect.TypeOf((*Value)(nil)).Elem()
	sourceType     = reflect.TypeOf((*pario.Source)(nil)).Elem()
	vectorizedType = reflect.TypeOf((*Vectorized)(nil)).Elem()
)

// SourceOp injects a document source into a plan: a scan node with no input
// ports that emits its Source. Plans with several scans of the same Source
// can be deduplicated by SharedScanRule.
type SourceOp struct {
	// Src is the document source to emit.
	Src pario.Source
}

// Name implements Operator.
func (o *SourceOp) Name() string { return "source" }

// Run implements Operator: () -> pario.Source.
func (o *SourceOp) Run(ctx *Context, _ Value) (Value, error) { return o.Src, nil }

// Inputs implements TypedOperator: a scan has no input ports.
func (o *SourceOp) Inputs() []reflect.Type { return nil }

// Output implements TypedOperator.
func (o *SourceOp) Output() reflect.Type { return sourceType }

// ScanKey implements scanner: scans of the same Source are interchangeable.
func (o *SourceOp) ScanKey() any { return o.Src }

// literalOp feeds the external input value of a Pipeline run into its
// compiled plan. It is synthetic: Observe does not see it.
type literalOp struct{ v Value }

func (o *literalOp) Name() string                       { return "input" }
func (o *literalOp) Run(*Context, Value) (Value, error) { return o.v, nil }
func (o *literalOp) Inputs() []reflect.Type             { return nil }
func (o *literalOp) isSynthetic()                       {}
func (o *literalOp) Output() reflect.Type {
	if o.v == nil {
		return anyType
	}
	return reflect.TypeOf(o.v)
}

// Edge connects the output of node From to input port Port of node To.
type Edge struct {
	From, To string
	Port     int
}

// Node is one named stage of a Plan.
type Node struct {
	name string
	op   Operator
}

// Name returns the node's plan-unique name.
func (n *Node) Name() string { return n.name }

// Op returns the operator the node wraps.
func (n *Node) Op() Operator { return n.op }

// Plan is a directed acyclic graph of named operator nodes — the
// generalization of the linear Pipeline to real workflows: one corpus scan
// can feed both word-count and TF/IDF, a TF/IDF result can fan out to
// K-Means and an ARFF archive at once.
//
// Build a plan fluently with NewPlan().Add(...).Connect(...), then Validate
// (or just Run, which validates first). Structural and type errors recorded
// during building are reported by Validate, so the builder methods never
// fail mid-chain. Rewriters (FuseRule, SharedScanRule) transform a plan
// before execution; Run schedules independent branches concurrently on the
// context's pool.
type Plan struct {
	nodes map[string]*Node
	order []string // node names in Add order, for deterministic traversal
	edges []Edge
	errs  []error // deferred builder errors, surfaced by Validate

	// notes holds per-node annotations and planNotes plan-level ones —
	// decision records attached by the optimizer (or any caller), rendered
	// by Explain and inherited through rewrites. They never affect
	// execution.
	notes     map[string]string
	planNotes []string
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{nodes: make(map[string]*Node)}
}

// Add registers a named operator node and returns the plan for chaining.
// Names must be unique within the plan; violations surface in Validate.
func (p *Plan) Add(name string, op Operator) *Plan {
	switch {
	case name == "":
		p.errs = append(p.errs, fmt.Errorf("workflow: Add with empty node name"))
	case op == nil:
		p.errs = append(p.errs, fmt.Errorf("workflow: node %s: nil operator", name))
	case p.nodes[name] != nil:
		p.errs = append(p.errs, fmt.Errorf("workflow: node %s added twice", name))
	default:
		p.nodes[name] = &Node{name: name, op: op}
		p.order = append(p.order, name)
	}
	return p
}

// Connect wires the output of from into input port 0 of to. Nodes may be
// added after they are referenced; existence is checked by Validate.
func (p *Plan) Connect(from, to string) *Plan { return p.ConnectPort(from, to, 0) }

// ConnectPort wires the output of from into the given input port of to.
func (p *Plan) ConnectPort(from, to string, port int) *Plan {
	if port < 0 {
		p.errs = append(p.errs, fmt.Errorf("workflow: edge %s -> %s: negative port %d", from, to, port))
		return p
	}
	p.edges = append(p.edges, Edge{From: from, To: to, Port: port})
	return p
}

// Annotate attaches a short human-readable annotation to the named node —
// the mechanism the plan optimizer uses to make its per-node decisions and
// cost estimates visible. Explain renders it as "# node: note"; repeated
// calls for one node append with "; ". Annotations are advisory: they never
// affect validation or execution, and rewrite rules carry them over to
// surviving nodes of the rewritten plan.
func (p *Plan) Annotate(node, note string) *Plan {
	if note == "" {
		return p
	}
	if p.notes == nil {
		p.notes = make(map[string]string)
	}
	if prev := p.notes[node]; prev != "" {
		note = prev + "; " + note
	}
	p.notes[node] = note
	return p
}

// AnnotatePlan attaches a plan-level annotation line, rendered by Explain
// as "# note" ahead of the per-node annotations.
func (p *Plan) AnnotatePlan(note string) *Plan {
	if note != "" {
		p.planNotes = append(p.planNotes, note)
	}
	return p
}

// Annotation returns the annotation attached to the named node ("" if
// none).
func (p *Plan) Annotation(node string) string { return p.notes[node] }

// PlanAnnotations returns a copy of the plan-level annotation lines.
func (p *Plan) PlanAnnotations() []string {
	out := make([]string, len(p.planNotes))
	copy(out, p.planNotes)
	return out
}

// inheritNotes copies the source plan's annotations onto p: all plan-level
// notes, and node notes whose node survived the rewrite. Rewrite rules call
// this on the plans they construct.
func (p *Plan) inheritNotes(src *Plan) {
	p.planNotes = append(p.planNotes, src.planNotes...)
	for _, name := range src.order {
		if note := src.notes[name]; note != "" && p.nodes[name] != nil {
			p.Annotate(name, note)
		}
	}
}

// Nodes returns the node names in Add order.
func (p *Plan) Nodes() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// Node returns the named node (nil if absent).
func (p *Plan) Node(name string) *Node { return p.nodes[name] }

// Edges returns a copy of the plan's edges.
func (p *Plan) Edges() []Edge {
	out := make([]Edge, len(p.edges))
	copy(out, p.edges)
	return out
}

// inPorts returns the declared input port types of an operator; operators
// without declared ports get a single dynamically-typed input.
func inPorts(op Operator) []reflect.Type {
	if t, ok := op.(TypedOperator); ok {
		return t.Inputs()
	}
	return []reflect.Type{anyType}
}

// outPort returns the declared output type (dynamic if undeclared).
func outPort(op Operator) reflect.Type {
	if t, ok := op.(TypedOperator); ok {
		return t.Output()
	}
	return anyType
}

// portAssignable reports whether a producer of type from can feed a port of
// type to. Dynamically-typed ends always connect (checked at run time).
func portAssignable(from, to reflect.Type) bool {
	if from == anyType || to == anyType {
		return true
	}
	return from.AssignableTo(to)
}

// Validate type-checks the plan before anything runs, replacing the linear
// engine's scattered runtime ErrType failures. It rejects, in order of
// detection: builder errors (duplicate or empty names, nil operators),
// edges referencing unknown nodes, ports out of range, input ports that are
// unconnected or connected twice, cycles, multi-port nodes whose operator
// cannot accept several inputs, and edges whose producer output type is not
// assignable to the consumer port type (wrapped in ErrType).
func (p *Plan) Validate() error {
	if len(p.errs) > 0 {
		return p.errs[0]
	}
	// Edge endpoints, port ranges and double connections.
	filled := make(map[string][]bool, len(p.nodes))
	for name, n := range p.nodes {
		filled[name] = make([]bool, len(inPorts(n.op)))
	}
	for _, e := range p.edges {
		if p.nodes[e.From] == nil {
			return fmt.Errorf("workflow: edge %s -> %s: unknown node %s", e.From, e.To, e.From)
		}
		to := p.nodes[e.To]
		if to == nil {
			return fmt.Errorf("workflow: edge %s -> %s: unknown node %s", e.From, e.To, e.To)
		}
		ports := filled[e.To]
		if e.Port >= len(ports) {
			return fmt.Errorf("workflow: edge %s -> %s: node %s (%s) has %d input port(s), no port %d",
				e.From, e.To, e.To, to.op.Name(), len(ports), e.Port)
		}
		if ports[e.Port] {
			return fmt.Errorf("workflow: node %s: input port %d connected twice", e.To, e.Port)
		}
		ports[e.Port] = true
	}
	// Dangling input ports and multi-input capability.
	for _, name := range p.order {
		n := p.nodes[name]
		ports := filled[name]
		for i, ok := range ports {
			if !ok {
				return fmt.Errorf("workflow: node %s (%s): input port %d is not connected", name, n.op.Name(), i)
			}
		}
		if len(ports) > 1 {
			if _, ok := n.op.(MultiOperator); !ok {
				return fmt.Errorf("workflow: node %s (%s): %d input ports but operator does not implement MultiOperator",
					name, n.op.Name(), len(ports))
			}
		}
	}
	// Cycles.
	order, err := p.topoOrder()
	if err != nil {
		return err
	}
	// Edge types, partition-aware: a partitioned producer presents its
	// per-partition payload type to shard consumers (map kernels and
	// stream reducers on port 0) and *Partitions to everything else, so a
	// partitioned dataset cannot leak into an operator that expects the
	// monolith.
	info := p.partitionInfo(order)
	for _, e := range p.edges {
		from, to := p.nodes[e.From], p.nodes[e.To]
		ft, tt := outPort(from.op), inPorts(to.op)[e.Port]
		if info[e.From].partitioned() && !consumesPerPart(info, p, e) {
			ft = partitionsType
		}
		if !portAssignable(ft, tt) {
			return fmt.Errorf("%w: edge %s -> %s: %s produces %v but %s port %d wants %v",
				ErrType, e.From, e.To, from.op.Name(), ft, to.op.Name(), e.Port, tt)
		}
	}
	return nil
}

// topoOrder returns the nodes in a deterministic topological order (ready
// nodes are taken in Add order), or an error naming the cycle members.
func (p *Plan) topoOrder() ([]*Node, error) {
	indeg := make(map[string]int, len(p.nodes))
	for _, e := range p.edges {
		if p.nodes[e.From] == nil || p.nodes[e.To] == nil {
			return nil, fmt.Errorf("workflow: edge %s -> %s references an unknown node", e.From, e.To)
		}
		indeg[e.To]++
	}
	order := make([]*Node, 0, len(p.nodes))
	done := make(map[string]bool, len(p.nodes))
	for len(order) < len(p.nodes) {
		progressed := false
		for _, name := range p.order {
			if done[name] || indeg[name] > 0 {
				continue
			}
			done[name] = true
			progressed = true
			order = append(order, p.nodes[name])
			for _, e := range p.edges {
				if e.From == name {
					indeg[e.To]--
				}
			}
		}
		if !progressed {
			var cyc []string
			for _, name := range p.order {
				if !done[name] {
					cyc = append(cyc, name)
				}
			}
			return nil, fmt.Errorf("workflow: plan has a cycle through %s", strings.Join(cyc, ", "))
		}
	}
	return order, nil
}

// consumersOf returns the edges leaving the named node.
func (p *Plan) consumersOf(name string) []Edge {
	var out []Edge
	for _, e := range p.edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// producerOf returns the edge feeding the given input port, if any.
func (p *Plan) producerOf(name string, port int) (Edge, bool) {
	for _, e := range p.edges {
		if e.To == name && e.Port == port {
			return e, true
		}
	}
	return Edge{}, false
}

// materializationArrow renders the edge connector: materialize -> load
// edges — the boundary fusion cancels — are marked =[arff]=>, all others
// are plain arrows.
func materializationArrow(from, to Operator) string {
	if _, m := from.(materializer); m {
		if _, l := to.(loader); l {
			return "=[arff]=>"
		}
	}
	return "->"
}

// Explain renders the plan one edge per line in topological order, marking
// materialize/load edges the way Pipeline.String marks materialization
// boundaries, and partition boundaries the way the executor schedules
// them: an edge carrying shards to a per-shard consumer renders as
// -[xN]->, an edge gathering N shards back into one dataset (a reduction
// barrier) renders as =[xN]=>, and the output of an iterative loop node
// (per-iteration shard tasks behind a reduction barrier) renders as
// ~[xN]~>:
//
//	scan -> partition
//	partition -[x8]-> tf-map
//	tf-map =[x8]=> df-reduce
//	tf-map -[x8]-> transform
//	df-reduce -> transform:1
//	transform -[x8]-> gather
//	transform =[x8]=> kmeans.assign
//	kmeans.assign ~[x8]~> kmeans.reduce
//
// Nodes without edges are listed alone. Annotations follow the edges as
// "#"-prefixed lines — plan-level notes first, then per-node notes in Add
// order — so an optimized plan explains the decisions behind its shape:
//
//	# optimizer: cost model v1, 8 procs
//	# tfidf: dict=u-map (est input+wc 410ms vs map-arena 520ms)
//
// Invalid plans are rendered best-effort in Add order.
func (p *Plan) Explain() string {
	order, err := p.topoOrder()
	var info map[string]pinfo
	if err != nil {
		order = make([]*Node, 0, len(p.order))
		for _, name := range p.order {
			order = append(order, p.nodes[name])
		}
	} else {
		info = p.partitionInfo(order)
	}
	var sb strings.Builder
	for _, n := range order {
		cons := p.consumersOf(n.name)
		if len(cons) == 0 {
			if isolated(p, n.name) {
				fmt.Fprintf(&sb, "%s\n", n.name)
			}
			continue
		}
		for _, e := range cons {
			to := p.nodes[e.To]
			arrow := materializationArrow(n.op, to.op)
			if pi, ok := info[e.From]; ok && pi.partitioned() {
				if consumesPerPart(info, p, e) {
					arrow = fmt.Sprintf("-[x%d]->", pi.nparts)
				} else {
					arrow = fmt.Sprintf("=[x%d]=>", pi.nparts)
				}
			} else if ok && pi.class == classLoop {
				arrow = fmt.Sprintf("~[x%d]~>", pi.nparts)
			}
			if e.Port != 0 {
				fmt.Fprintf(&sb, "%s %s %s:%d\n", e.From, arrow, e.To, e.Port)
			} else {
				fmt.Fprintf(&sb, "%s %s %s\n", e.From, arrow, e.To)
			}
		}
	}
	for _, note := range p.planNotes {
		fmt.Fprintf(&sb, "# %s\n", note)
	}
	for _, name := range p.order {
		if note := p.notes[name]; note != "" {
			fmt.Fprintf(&sb, "# %s: %s\n", name, note)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}

// isolated reports whether a node has no edges at all.
func isolated(p *Plan, name string) bool {
	for _, e := range p.edges {
		if e.From == name || e.To == name {
			return false
		}
	}
	return true
}
