package workflow

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hpa/internal/dict"
	"hpa/internal/kmeans"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/simsched"
	"hpa/internal/tfidf"
)

// fnOp is a configurable test operator with declared ports.
type fnOp struct {
	name string
	ins  []reflect.Type
	out  reflect.Type
	fn   func(ctx *Context, ins []Value) (Value, error)
}

func (o *fnOp) Name() string           { return o.name }
func (o *fnOp) Inputs() []reflect.Type { return o.ins }
func (o *fnOp) Output() reflect.Type   { return o.out }
func (o *fnOp) Run(ctx *Context, in Value) (Value, error) {
	return o.fn(ctx, []Value{in})
}
func (o *fnOp) RunAll(ctx *Context, ins []Value) (Value, error) {
	return o.fn(ctx, ins)
}

// narrowOp declares two input ports but cannot accept them (no RunAll).
type narrowOp struct{}

func (narrowOp) Name() string                       { return "narrow" }
func (narrowOp) Run(*Context, Value) (Value, error) { return nil, nil }
func (narrowOp) Inputs() []reflect.Type             { return []reflect.Type{anyType, anyType} }
func (narrowOp) Output() reflect.Type               { return anyType }

var stringType = reflect.TypeOf("")

func passThrough(name string) *fnOp {
	return &fnOp{name: name, ins: []reflect.Type{stringType}, out: stringType,
		fn: func(_ *Context, ins []Value) (Value, error) { return ins[0], nil }}
}

func stringSource(name, v string) *fnOp {
	return &fnOp{name: name, out: stringType,
		fn: func(_ *Context, _ []Value) (Value, error) { return v, nil }}
}

// branchingPlan is the workflow the linear engine could not express: one
// corpus scan feeding word-count and TF/IDF, the TF/IDF result fanning out
// to K-Means (through a materialize/load pair) and an ARFF archive.
func branchingPlan(src pario.Source) *Plan {
	return NewPlan().
		Add("scan", &SourceOp{Src: src}).
		Add("wordcount", &WordCountOp{DictKind: dict.Tree}).
		Add("tfidf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree, Normalize: true}}).
		Add("materialize", &MaterializeARFF{}).
		Add("load", &LoadARFF{}).
		Add("kmeans", &KMeansOp{Opts: kmeans.Options{K: 4, Seed: 7}}).
		Add("output", &WriteAssignments{}).
		Add("archive", &MaterializeARFF{Filename: "archive.arff"}).
		Connect("scan", "wordcount").
		Connect("scan", "tfidf").
		Connect("tfidf", "materialize").
		Connect("materialize", "load").
		Connect("load", "kmeans").
		Connect("kmeans", "output").
		Connect("tfidf", "archive")
}

func TestBranchingPlanValidatesAndRuns(t *testing.T) {
	c := testCorpus()
	plan := branchingPlan(c.Source(nil))
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t, 4)
	outs, err := plan.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := outs["wordcount"].(*WordCounts)
	if !ok || wc.TotalTokens == 0 {
		t.Fatalf("wordcount sink = %T", outs["wordcount"])
	}
	cl, ok := outs["output"].(*Clustering)
	if !ok || len(cl.Result.Assign) != c.Len() {
		t.Fatalf("output sink = %T", outs["output"])
	}
	ref, ok := outs["archive"].(*ARFFRef)
	if !ok {
		t.Fatalf("archive sink = %T", outs["archive"])
	}
	if fi, err := os.Stat(ref.Path); err != nil || fi.Size() == 0 {
		t.Fatalf("archive not written: %v", err)
	}
}

func TestDAGFusionCancelsPairKeepsArchive(t *testing.T) {
	c := testCorpus()
	plan := branchingPlan(c.Source(nil))
	fused := plan.Apply(FuseRule())

	// The materialize/load pair around the K-Means edge is gone; the
	// archive materializer (a sink with no loader) survives.
	if fused.Node("materialize") != nil || fused.Node("load") != nil {
		t.Fatalf("pair not canceled: %v", fused.Nodes())
	}
	if fused.Node("archive") == nil {
		t.Fatal("fusion removed the archive sink")
	}
	rewired := false
	for _, e := range fused.Edges() {
		if e.From == "tfidf" && e.To == "kmeans" {
			rewired = true
		}
	}
	if !rewired {
		t.Fatalf("kmeans not rewired to tfidf: %v", fused.Edges())
	}
	// The original plan is untouched.
	if plan.Node("load") == nil || len(plan.Edges()) != 7 {
		t.Fatal("FuseRule mutated its input plan")
	}

	ctx := testCtx(t, 4)
	outs, err := fused.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Fused: no intermediate I/O phases, archive still written.
	if ctx.Breakdown.Get("kmeans-input") != 0 {
		t.Fatalf("fused plan loaded from disk: %v", ctx.Breakdown)
	}
	if _, err := os.Stat(filepath.Join(ctx.ScratchDir, "archive.arff")); err != nil {
		t.Fatalf("archive missing after fusion: %v", err)
	}
	cl := outs["output"].(*Clustering)
	if cl.TFIDF == nil {
		t.Fatal("fused clustering lost the in-memory TF/IDF result")
	}
}

func TestFusedBranchingPlanMatchesDiscrete(t *testing.T) {
	c := testCorpus()
	var assigns [][]int32
	for _, fuse := range []bool{false, true} {
		plan := branchingPlan(c.Source(nil))
		if fuse {
			plan = plan.Apply(FuseRule())
		}
		ctx := testCtx(t, 4)
		outs, err := plan.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		assigns = append(assigns, outs["output"].(*Clustering).Result.Assign)
	}
	if len(assigns[0]) != len(assigns[1]) {
		t.Fatalf("doc counts differ: %d vs %d", len(assigns[0]), len(assigns[1]))
	}
	for i := range assigns[0] {
		if assigns[0][i] != assigns[1][i] {
			t.Fatalf("doc %d: discrete %d != fused %d", i, assigns[0][i], assigns[1][i])
		}
	}
}

func TestFusionCancelsChainedPairsAcrossTheGraph(t *testing.T) {
	// Two materialize/load pairs in one path, surrounded by branches: both
	// cancel, regardless of their positions in the Add order.
	c := testCorpus()
	plan := NewPlan().
		Add("m2", &MaterializeARFF{Filename: "b.arff"}).
		Add("scan", &SourceOp{Src: c.Source(nil)}).
		Add("l1", &LoadARFF{}).
		Add("tfidf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree}}).
		Add("wordcount", &WordCountOp{DictKind: dict.Tree}).
		Add("m1", &MaterializeARFF{Filename: "a.arff"}).
		Add("l2", &LoadARFF{}).
		Add("kmeans", &KMeansOp{Opts: kmeans.Options{K: 2, Seed: 1}}).
		Connect("scan", "tfidf").
		Connect("scan", "wordcount").
		Connect("tfidf", "m1").
		Connect("m1", "l1").
		Connect("l1", "kmeans").
		Connect("tfidf", "m2").
		Connect("m2", "l2")
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	fused := plan.Apply(FuseRule())
	for _, gone := range []string{"m1", "l1", "m2", "l2"} {
		if fused.Node(gone) != nil {
			t.Fatalf("node %s survived fusion: %v", gone, fused.Nodes())
		}
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedScanDeduplicatesSources(t *testing.T) {
	c := testCorpus()
	src := c.Source(nil)
	plan := NewPlan().
		Add("scan-wc", &SourceOp{Src: src}).
		Add("scan-tfidf", &SourceOp{Src: src}).
		Add("wordcount", &WordCountOp{DictKind: dict.Tree}).
		Add("tfidf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree, Normalize: true}}).
		Connect("scan-wc", "wordcount").
		Connect("scan-tfidf", "tfidf")
	dedup := plan.Apply(SharedScanRule())
	if dedup.Node("scan-tfidf") != nil {
		t.Fatalf("duplicate scan survived: %v", dedup.Nodes())
	}
	rewired := false
	for _, e := range dedup.Edges() {
		if e.From == "scan-wc" && e.To == "tfidf" {
			rewired = true
		}
	}
	if !rewired {
		t.Fatalf("tfidf not rewired to the shared scan: %v", dedup.Edges())
	}
	// Distinct sources must not merge.
	other := NewPlan().
		Add("a", &SourceOp{Src: src}).
		Add("b", &SourceOp{Src: c.Source(nil)}).
		Add("wc", &WordCountOp{DictKind: dict.Tree}).
		Add("tf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree}}).
		Connect("a", "wc").
		Connect("b", "tf")
	if after := other.Apply(SharedScanRule()); after.Node("b") == nil {
		t.Fatal("SharedScanRule merged scans of different sources")
	}

	ctx := testCtx(t, 2)
	outs, err := dedup.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if outs["wordcount"].(*WordCounts).TotalTokens == 0 {
		t.Fatal("deduped plan produced no word counts")
	}
	if outs["tfidf"].(*tfidf.Result).Dim() == 0 {
		t.Fatal("deduped plan produced no tfidf result")
	}
}

func TestValidateRejectsTypeMismatchedEdge(t *testing.T) {
	c := testCorpus()
	// WordCounts is not Vectorized: the edge must fail at build time,
	// before any operator runs.
	plan := NewPlan().
		Add("scan", &SourceOp{Src: c.Source(nil)}).
		Add("wordcount", &WordCountOp{DictKind: dict.Tree}).
		Add("kmeans", &KMeansOp{Opts: kmeans.Options{K: 2}}).
		Connect("scan", "wordcount").
		Connect("wordcount", "kmeans")
	err := plan.Validate()
	if !errors.Is(err, ErrType) {
		t.Fatalf("err = %v, want ErrType", err)
	}
	for _, frag := range []string{"wordcount", "kmeans"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error does not identify %q: %v", frag, err)
		}
	}
	if _, err := plan.Run(testCtx(t, 1)); !errors.Is(err, ErrType) {
		t.Fatalf("Run did not surface the validation error: %v", err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	plan := NewPlan().
		Add("a", passThrough("a")).
		Add("b", passThrough("b")).
		Add("c", passThrough("c")).
		Connect("a", "b").
		Connect("b", "c").
		Connect("c", "a")
	err := plan.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
}

func TestValidateRejectsStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		frag string
	}{
		{"dangling input", NewPlan().Add("lone", passThrough("p")), "not connected"},
		{"unknown to", NewPlan().Add("s", stringSource("s", "x")).Connect("s", "ghost"), "unknown node"},
		{"unknown from", NewPlan().Add("p", passThrough("p")).Connect("ghost", "p"), "unknown node"},
		{"duplicate name", NewPlan().Add("x", stringSource("x", "a")).Add("x", stringSource("x", "b")), "added twice"},
		{"nil operator", NewPlan().Add("x", nil), "nil operator"},
		{"empty name", NewPlan().Add("", stringSource("s", "x")), "empty node name"},
		{"negative port", NewPlan().Add("s", stringSource("s", "x")).Add("p", passThrough("p")).ConnectPort("s", "p", -1), "negative port"},
		{"port out of range", NewPlan().Add("s", stringSource("s", "x")).Add("p", passThrough("p")).Connect("s", "p").ConnectPort("s", "p", 3), "no port 3"},
		{"double connect", NewPlan().Add("s", stringSource("s", "x")).Add("p", passThrough("p")).Connect("s", "p").Connect("s", "p"), "connected twice"},
		{"source with input", NewPlan().Add("s", stringSource("s", "x")).Add("s2", stringSource("s2", "y")).Connect("s", "s2"), "no port 0"},
		{"multi-port without MultiOperator", NewPlan().
			Add("s1", stringSource("s1", "a")).Add("s2", stringSource("s2", "b")).Add("n", narrowOp{}).
			ConnectPort("s1", "n", 0).ConnectPort("s2", "n", 1), "MultiOperator"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want fragment %q", tc.name, err, tc.frag)
		}
	}
}

func TestMultiInputOperator(t *testing.T) {
	join := &fnOp{name: "join", ins: []reflect.Type{stringType, stringType}, out: stringType,
		fn: func(_ *Context, ins []Value) (Value, error) {
			return fmt.Sprintf("%v+%v", ins[0], ins[1]), nil
		}}
	plan := NewPlan().
		Add("left", stringSource("left", "L")).
		Add("right", stringSource("right", "R")).
		Add("join", join).
		ConnectPort("left", "join", 0).
		ConnectPort("right", "join", 1)
	outs, err := plan.Run(testCtx(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if outs["join"] != "L+R" {
		t.Fatalf("join = %v", outs["join"])
	}
}

func TestIndependentBranchesRunConcurrently(t *testing.T) {
	// Two branches rendezvous: each signals it has started and waits for
	// the other. This only completes if the scheduler overlaps them.
	aStarted, bStarted := make(chan struct{}), make(chan struct{})
	meet := func(mine, other chan struct{}) func(*Context, []Value) (Value, error) {
		return func(_ *Context, ins []Value) (Value, error) {
			close(mine)
			select {
			case <-other:
				return ins[0], nil
			case <-time.After(10 * time.Second):
				return nil, errors.New("branches did not overlap")
			}
		}
	}
	plan := NewPlan().
		Add("src", stringSource("src", "x")).
		Add("a", &fnOp{name: "a", ins: []reflect.Type{stringType}, out: stringType, fn: meet(aStarted, bStarted)}).
		Add("b", &fnOp{name: "b", ins: []reflect.Type{stringType}, out: stringType, fn: meet(bStarted, aStarted)}).
		Connect("src", "a").
		Connect("src", "b")
	if _, err := plan.Run(testCtx(t, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderSerializesBranches(t *testing.T) {
	// The simsched Recorder attributes samples to the most recently begun
	// phase, so a recording run must not overlap nodes.
	var cur, peak atomic.Int32
	tracked := func(name string) *fnOp {
		return &fnOp{name: name, ins: []reflect.Type{stringType}, out: stringType,
			fn: func(_ *Context, ins []Value) (Value, error) {
				if c := cur.Add(1); c > peak.Load() {
					peak.Store(c)
				}
				time.Sleep(20 * time.Millisecond)
				cur.Add(-1)
				return ins[0], nil
			}}
	}
	plan := NewPlan().
		Add("src", stringSource("src", "x")).
		Add("a", tracked("a")).
		Add("b", tracked("b")).
		Connect("src", "a").
		Connect("src", "b")
	ctx := testCtx(t, 4)
	ctx.Recorder = simsched.NewRecorder()
	if _, err := plan.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Fatalf("recording run overlapped %d nodes", peak.Load())
	}
}

func TestPlanRunNestedInsidePoolTask(t *testing.T) {
	// The old Pipeline.Run executed operators inline on the caller, so it
	// was safe to call from within a pool task. The plan scheduler must
	// keep that property via its helping join, even on a 1-worker pool.
	p := par.NewPool(1)
	t.Cleanup(p.Close)
	ctx := NewContext(p)
	ctx.ScratchDir = t.TempDir()
	plan := NewPlan().
		Add("src", stringSource("src", "x")).
		Add("a", passThrough("a")).
		Add("b", passThrough("b")).
		Connect("src", "a").
		Connect("src", "b")
	var outs map[string]Value
	var err error
	g := p.NewGroup()
	g.Spawn(func() { outs, err = plan.Run(ctx) })
	g.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if outs["a"] != "x" || outs["b"] != "x" {
		t.Fatalf("outs = %v", outs)
	}
}

func TestPlanRunErrorIdentifiesNode(t *testing.T) {
	boom := &fnOp{name: "boom", ins: []reflect.Type{stringType}, out: stringType,
		fn: func(_ *Context, _ []Value) (Value, error) { return nil, errors.New("kaput") }}
	plan := NewPlan().
		Add("src", stringSource("src", "x")).
		Add("boom", boom).
		Connect("src", "boom")
	_, err := plan.Run(testCtx(t, 1))
	if err == nil || !strings.Contains(err.Error(), "operator boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlanRunRecoversOperatorPanic(t *testing.T) {
	bad := &fnOp{name: "bad", ins: []reflect.Type{stringType}, out: stringType,
		fn: func(_ *Context, _ []Value) (Value, error) { panic("exploded") }}
	plan := NewPlan().
		Add("src", stringSource("src", "x")).
		Add("bad", bad).
		Connect("src", "bad")
	_, err := plan.Run(testCtx(t, 1))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestExplainMarksMaterializationEdges(t *testing.T) {
	c := testCorpus()
	discrete := TFKMPlan(c.Source(nil), baseCfg(Discrete))
	want := strings.Join([]string{
		"scan -> tfidf",
		"tfidf -> materialize-arff",
		"materialize-arff =[arff]=> load-arff",
		"load-arff -> kmeans",
		"kmeans -> output",
	}, "\n")
	if got := discrete.Explain(); got != want {
		t.Fatalf("discrete explain:\n%s\nwant:\n%s", got, want)
	}
	merged := TFKMPlan(c.Source(nil), baseCfg(Merged))
	want = strings.Join([]string{
		"scan -> tfidf",
		"tfidf -> kmeans",
		"kmeans -> output",
	}, "\n")
	if got := merged.Explain(); got != want {
		t.Fatalf("merged explain:\n%s\nwant:\n%s", got, want)
	}
}

// TestPipelineAdapterPhaseRegression pins the adapter to the seed engine's
// behavior: a Pipeline run must produce exactly the phase keys, in exactly
// the first-recorded order, that the original sequential loop produced.
func TestPipelineAdapterPhaseRegression(t *testing.T) {
	c := testCorpus()
	want := map[Mode][]string{
		Discrete: {tfidf.PhaseInputWC, tfidf.PhaseTransform, tfidf.PhaseOutput, "kmeans-input", kmeans.PhaseKMeans, PhaseOutput},
		Merged:   {tfidf.PhaseInputWC, tfidf.PhaseTransform, kmeans.PhaseKMeans, PhaseOutput},
	}
	for _, mode := range []Mode{Discrete, Merged} {
		ctx := testCtx(t, 2)
		pipe := TFKMPipeline(baseCfg(mode))
		out, err := pipe.Run(ctx, pario.Source(c.Source(nil)))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := out.(*Clustering); !ok {
			t.Fatalf("%v: pipeline produced %T", mode, out)
		}
		got := ctx.Breakdown.Phases()
		if len(got) != len(want[mode]) {
			t.Fatalf("%v: phases %v, want %v", mode, got, want[mode])
		}
		for i := range got {
			if got[i] != want[mode][i] {
				t.Fatalf("%v: phases %v, want %v", mode, got, want[mode])
			}
		}
		// The plan-based TFKM runner must agree with the adapter.
		ctx2 := testCtx(t, 2)
		if _, err := RunTFKM(c.Source(nil), ctx2, baseCfg(mode)); err != nil {
			t.Fatal(err)
		}
		got2 := ctx2.Breakdown.Phases()
		if len(got2) != len(got) {
			t.Fatalf("%v: plan phases %v != adapter phases %v", mode, got2, got)
		}
		for i := range got2 {
			if got2[i] != got[i] {
				t.Fatalf("%v: plan phases %v != adapter phases %v", mode, got2, got)
			}
		}
	}
}

func TestPipelineToPlanUniquifiesNames(t *testing.T) {
	p := NewPipeline(&WriteAssignments{}, &WriteAssignments{})
	plan := p.ToPlan()
	names := plan.Nodes()
	if len(names) != 2 || names[0] != "output" || names[1] != "output#2" {
		t.Fatalf("names = %v", names)
	}
}

func TestEmptyPipelineReturnsInput(t *testing.T) {
	out, err := NewPipeline().Run(testCtx(t, 1), "hello")
	if err != nil || out != "hello" {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestPlanRunReturnsOnlySinks(t *testing.T) {
	c := testCorpus()
	plan := TFKMPlan(c.Source(nil), baseCfg(Merged))
	outs, err := plan.Run(testCtx(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("sinks = %d, want 1", len(outs))
	}
	if _, ok := outs["output"].(*Clustering); !ok {
		t.Fatalf("output sink = %T", outs["output"])
	}
}
