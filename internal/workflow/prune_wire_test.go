package workflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"testing"

	"hpa/internal/flatwire"
	"hpa/internal/kmeans"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/sparse"
	"hpa/internal/tfidf"
)

// runTFKMPruneOn runs the full plan with an explicit K-Means option set —
// the prune matrix needs to flip Prune and Empty per run.
func runTFKMPruneOn(t *testing.T, src pario.Source, shards int, backend Backend, scratch string, km kmeans.Options) *TFKMReport {
	t.Helper()
	pool := par.NewPool(4)
	defer pool.Close()
	ctx := NewContext(pool)
	ctx.ScratchDir = scratch
	ctx.Backend = backend
	rep, err := RunTFKM(src, ctx, TFKMConfig{
		Mode:   Merged,
		Shards: shards,
		TFIDF:  tfidf.Options{Normalize: true},
		KMeans: km,
	})
	if err != nil {
		t.Fatalf("RunTFKM(shards=%d, backend=%s, prune=%s): %v", shards, backend.Name(), km.Prune, err)
	}
	return rep
}

// TestPrunedAssignMatchesBulk is the pruning and sharded-seeding
// acceptance suite. Two baselines anchor the matrix:
//
//   - the bulk-synchronous plan (Shards: 0) — serial K-Means++ seeding,
//     full-scan assignment. Every sharded cell must reproduce its seed
//     picks, assignments, cluster counts and iteration count exactly
//     (seed picks are the tentpole's bit-identity claim: the decomposed
//     scan rounds replay the serial RNG draw-for-draw), and its centroids
//     up to reduction-order rounding — the same contract sameClustering
//     asserts for the unpruned loop;
//   - the sharded PruneOff run at the same shard count. Within one shard
//     count, {off, hamerly, elkan} × {local, rpc} must agree
//     bit-for-bit: inertia, full inertia history, centroids, everything
//     — pruning and backend choice never touch a float.
//
// The bounded cells must also actually skip work, and the per-centroid
// Elkan bounds must never skip less than Hamerly's single bound over the
// matrix (strict dominance on a k>=16 case is asserted at the kmeans
// level, where synthetic data iterates long enough to open a gap — this
// corpus converges in a couple of iterations).
//
// Both baselines pin the scalar distance kernel (Block: -1) while the
// matrix cells cycle the blocked kernel's lane widths {1, 2, 4, 8}
// deterministically, so every cell's bit-for-bit comparison doubles as
// the blocked-kernel equality proof — at k=13, deliberately not a
// multiple of any width, so the ragged tail lanes are exercised too.
// Under -short (the CI race run) the matrix shrinks to one shard count
// and one empty policy — still covering sharded seeding on both backends
// under the race detector.
func TestPrunedAssignMatchesBulk(t *testing.T) {
	src := diskCorpus(t)
	scratch := t.TempDir()
	// K well above the corpus's natural topic count: the run still converges
	// fast, but enough centroids sit close together that bound gaps open and
	// some documents provably skip already in iteration 2 — on this tiny
	// deterministic corpus that is the window pruning gets. (Long-running
	// skip-rate behavior is covered at the kmeans level, where synthetic
	// data iterates longer.)
	empties := []kmeans.EmptyPolicy{kmeans.KeepCentroid, kmeans.ReseedFarthest}
	shardCounts := []int{1, 4, 7}
	if testing.Short() {
		empties = empties[:1]
		shardCounts = []int{4}
	}
	modes := []struct {
		mode    kmeans.PruneMode
		variant string
	}{
		{kmeans.PruneOff, "off"},
		{kmeans.PruneOn, "hamerly"},
		{kmeans.PruneElkan, "elkan"},
	}
	blocks := []int{1, 2, 4, 8}
	cell := 0
	for _, empty := range empties {
		// Shards: 0 keeps the single-operator bulk path: seeding scans run
		// serially inside the clusterer, not as executor prepare tasks.
		bulk := runTFKMPruneOn(t, src, 0, LocalBackend{}, scratch,
			kmeans.Options{K: 13, Seed: 3, Empty: empty, Prune: kmeans.PruneOff, Block: -1})
		br := bulk.Clustering.Result
		if br.Prune.Enabled {
			t.Fatalf("empty=%v: bulk PruneOff run reports bounds enabled", empty)
		}
		var hamSkipped, elkSkipped int64
		for _, shards := range shardCounts {
			// Per-shard-count bit-exact reference: the unpruned local run.
			ref := runTFKMPruneOn(t, src, shards, LocalBackend{}, scratch,
				kmeans.Options{K: 13, Seed: 3, Empty: empty, Prune: kmeans.PruneOff, Block: -1}).Clustering.Result
			backends := []struct {
				name string
				b    Backend
			}{{"local", LocalBackend{}}, {"rpc", pipeBackend(t, 2)}}
			for _, bk := range backends {
				for _, m := range modes {
					block := blocks[cell%len(blocks)]
					cell++
					rep := runTFKMPruneOn(t, src, shards, bk.b, scratch,
						kmeans.Options{K: 13, Seed: 3, Empty: empty, Prune: m.mode, Block: block})
					pr := rep.Clustering.Result
					tag := fmt.Sprintf("empty=%v shards=%d backend=%s prune=%s block=%d", empty, shards, bk.name, m.variant, block)

					// Against the serial-seeded bulk baseline: discrete
					// outcomes exact, centroids up to reduction order.
					if !reflect.DeepEqual(pr.Seeds, br.Seeds) {
						t.Errorf("%s: seed picks: got %v, bulk serial %v", tag, pr.Seeds, br.Seeds)
					}
					if pr.Iterations != br.Iterations {
						t.Errorf("%s: iterations: got %d, bulk %d", tag, pr.Iterations, br.Iterations)
					}
					if !reflect.DeepEqual(pr.Assign, br.Assign) {
						t.Errorf("%s: assignments differ from bulk", tag)
					}
					if !reflect.DeepEqual(pr.Counts, br.Counts) {
						t.Errorf("%s: cluster counts differ from bulk", tag)
					}
					for j := range br.Centroids {
						for d := range br.Centroids[j] {
							w, g := br.Centroids[j][d], pr.Centroids[j][d]
							if math.Abs(w-g) > 1e-12*(1+math.Abs(w)) {
								t.Fatalf("%s: centroid %d[%d] %v vs bulk %v", tag, j, d, g, w)
							}
						}
					}

					// Against the same-shard-count unpruned reference:
					// bit-for-bit, floats included.
					if math.Float64bits(pr.Inertia) != math.Float64bits(ref.Inertia) {
						t.Errorf("%s: inertia: got %v, unpruned ref %v", tag, pr.Inertia, ref.Inertia)
					}
					if !reflect.DeepEqual(pr.History, ref.History) {
						t.Errorf("%s: inertia history differs from unpruned ref", tag)
					}
					if !reflect.DeepEqual(pr.Centroids, ref.Centroids) {
						t.Errorf("%s: centroids differ bitwise from unpruned ref", tag)
					}

					if pr.Prune.Variant != m.variant {
						t.Errorf("%s: variant %q, want %q", tag, pr.Prune.Variant, m.variant)
					}
					switch m.mode {
					case kmeans.PruneOff:
						if pr.Prune.Enabled {
							t.Errorf("%s: PruneOff run reports bounds enabled", tag)
						}
					default:
						if !pr.Prune.Enabled {
							t.Errorf("%s: bounded run reports bounds disabled", tag)
						}
						if pr.Prune.Skipped == 0 {
							t.Errorf("%s: pruning skipped nothing over %d document-iterations", tag, pr.Prune.DocIterations)
						}
						if m.mode == kmeans.PruneOn {
							hamSkipped += pr.Prune.Skipped
						} else {
							elkSkipped += pr.Prune.Skipped
						}
					}
				}
			}
		}
		if elkSkipped < hamSkipped {
			t.Errorf("empty=%v: elkan skipped %d < hamerly %d at k=13; per-centroid bounds must dominate",
				empty, elkSkipped, hamSkipped)
		}
	}
}

// gobBody encodes kernel arguments the way the RPC backend would.
func gobBody(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob encode %T: %v", v, err)
	}
	return buf.Bytes()
}

// clearWorkerCaches resets the worker-side transform caches, so cache
// protocol tests start from a cold worker regardless of test order.
func clearWorkerCaches() {
	globalCache.Lock()
	globalCache.m = make(map[globalCacheKey]*globalCacheEntry)
	globalCache.Unlock()
	countCache.Lock()
	countCache.m = make(map[string]*countCacheEntry)
	countCache.Unlock()
}

// transformFlags runs the transform kernel and returns the reply's miss
// bitmask, plus the raw reply for payload decoding.
func transformFlags(t *testing.T, args TransformTaskArgs) (uint32, []byte) {
	t.Helper()
	reply, err := runTransformKernelFlat(gobBody(t, args))
	if err != nil {
		t.Fatalf("transform kernel: %v", err)
	}
	r := flatwire.NewReader(reply)
	r.Magic(transformReplyMagic, "transform reply")
	flags := r.U32()
	if err := r.Err(); err != nil {
		t.Fatalf("transform reply header: %v", err)
	}
	return flags, reply
}

// TestTransformKernelCacheProtocol drives the worker-side cache protocol
// deterministically: a cold worker reports exactly the bodies it is
// missing, one inlined resend fills the global cache, and from then on the
// hash alone suffices — the table body ships at most once per worker.
func TestTransformKernelCacheProtocol(t *testing.T) {
	clearWorkerCaches()
	opts := tfidf.Options{Normalize: true}
	wopts, ok := opts.Wire()
	if !ok {
		t.Fatalf("options do not serialize")
	}
	docs := [][]byte{
		[]byte("alpha beta beta gamma"),
		[]byte("beta gamma gamma"),
		[]byte("alpha delta epsilon epsilon"),
	}
	pool := par.NewPool(2)
	defer pool.Close()
	count := func() *tfidf.ShardCounts {
		sc, err := tfidf.CountShard(&pario.MemSource{Docs: docs}, 1, opts)
		if err != nil {
			t.Fatalf("CountShard: %v", err)
		}
		return sc
	}
	g := tfidf.MergeShards([]*tfidf.ShardCounts{count()}, pool, opts)
	hash := g.ContentHash()
	expected := tfidf.TransformShard(g, count(), pool, opts)

	// 1. Cold worker, hash-only send, unknown session: both bodies missing.
	flags, _ := transformFlags(t, TransformTaskArgs{CountsSession: "sess-a", GlobalHash: hash, Opts: wopts})
	if flags != needGlobalFlag|needCountsFlag {
		t.Fatalf("cold worker flags = %#x, want %#x", flags, needGlobalFlag|needCountsFlag)
	}

	// 2. Counts cached (as the count kernel would): only the global missing —
	// and the miss must not consume the cached counts (the resend needs them).
	cacheCounts("sess-a", count())
	flags, _ = transformFlags(t, TransformTaskArgs{CountsSession: "sess-a", GlobalHash: hash, Opts: wopts})
	if flags != needGlobalFlag {
		t.Fatalf("counts-cached flags = %#x, want %#x", flags, needGlobalFlag)
	}
	if peekCounts("sess-a") == nil {
		t.Fatalf("global miss consumed the cached counts")
	}

	// 3. The resend inlines the global body: full reply, cached counts
	// consumed, table cached for every later shard.
	flags, reply := transformFlags(t, TransformTaskArgs{
		CountsSession: "sess-a", GlobalFlat: g.Wire().EncodeFlat(nil), GlobalHash: hash, Opts: wopts,
	})
	if flags != 0 {
		t.Fatalf("resend flags = %#x, want 0", flags)
	}
	vs, err := tfidf.DecodeFlatVectorShard(reply[8:])
	if err != nil {
		t.Fatalf("decode transform payload: %v", err)
	}
	assertShardEqual(t, "resend", vs, expected)
	if peekCounts("sess-a") != nil {
		t.Errorf("transform left the consumed counts cached")
	}

	// 4. A later shard on the same worker: the hash alone suffices — no
	// second body ship is ever requested (the ≤ once per worker bound).
	cacheCounts("sess-b", count())
	flags, reply = transformFlags(t, TransformTaskArgs{CountsSession: "sess-b", GlobalHash: hash, Opts: wopts})
	if flags != 0 {
		t.Fatalf("warm-cache flags = %#x: worker requested a second global ship", flags)
	}
	vs, err = tfidf.DecodeFlatVectorShard(reply[8:])
	if err != nil {
		t.Fatalf("decode warm-cache payload: %v", err)
	}
	assertShardEqual(t, "warm cache", vs, expected)

	// 5. Inlined counts (the no-affinity fallback) against the cached global.
	flags, reply = transformFlags(t, TransformTaskArgs{Counts: count().Wire(false), GlobalHash: hash, Opts: wopts})
	if flags != 0 {
		t.Fatalf("inlined-counts flags = %#x", flags)
	}
	vs, err = tfidf.DecodeFlatVectorShard(reply[8:])
	if err != nil {
		t.Fatalf("decode inlined-counts payload: %v", err)
	}
	assertShardEqual(t, "inlined counts", vs, expected)
}

// assertShardEqual compares two vector shards bit-exactly.
func assertShardEqual(t *testing.T, what string, got, want *tfidf.VectorShard) {
	t.Helper()
	if len(got.Vectors) != len(want.Vectors) {
		t.Fatalf("%s: %d vectors, want %d", what, len(got.Vectors), len(want.Vectors))
	}
	for i := range want.Vectors {
		if !sparse.Equal(&got.Vectors[i], &want.Vectors[i]) {
			t.Errorf("%s: vector %d differs", what, i)
		}
		if math.Float64bits(got.Norms[i]) != math.Float64bits(want.Norms[i]) {
			t.Errorf("%s: norm %d bits differ", what, i)
		}
	}
	if !reflect.DeepEqual(got.DocNames, want.DocNames) {
		t.Errorf("%s: names differ", what)
	}
}

// TestGlobalShipsBounded runs the full plan over RPC workers and asserts
// the wire bound end-to-end: the global term table's body crosses the wire
// at most once per worker process per content hash (the in-process pipe
// workers share one cache, so steady state is a single ship), and a
// repeat run over the same corpus ships no bodies at all.
func TestGlobalShipsBounded(t *testing.T) {
	clearWorkerCaches()
	globalInlineShips.Store(0)
	b := pipeBackend(t, 2)
	src := diskCorpus(t)
	scratch := t.TempDir()
	// One pool slot (plus the scheduler helping) keeps concurrent cold
	// misses — each of which legitimately triggers its own resend — rare,
	// so the ship count is the steady-state bound, not a race artifact.
	pool := par.NewPool(1)
	defer pool.Close()
	run := func() {
		ctx := NewContext(pool)
		ctx.ScratchDir = scratch
		ctx.Backend = b
		if _, err := RunTFKM(src, ctx, TFKMConfig{
			Mode:   Merged,
			Shards: 7,
			TFIDF:  tfidf.Options{Normalize: true},
			KMeans: kmeans.Options{K: 8, Seed: 1},
		}); err != nil {
			t.Fatalf("RunTFKM: %v", err)
		}
	}
	run()
	ships := globalInlineShips.Load()
	if ships < 1 || ships > 2 {
		t.Errorf("first run inlined the global %d times, want 1 (2 allowed for a concurrent cold miss)", ships)
	}
	run()
	if d := globalInlineShips.Load() - ships; d != 0 {
		t.Errorf("repeat run inlined the global %d more times, want 0 (hash cache should hit)", d)
	}
	if n := b.PinnedAffinities(); n != 0 {
		t.Errorf("%d affinity pins left after the runs (scope release failed)", n)
	}
	countCache.Lock()
	left := len(countCache.m)
	countCache.Unlock()
	if left != 0 {
		t.Errorf("%d count-cache sessions left on the worker after the runs", left)
	}
}

// TestKMAssignReplyFlat covers the flat kmeans.assign reply codec: exact
// round trips with and without distances, and structural rejection of
// malformed buffers.
func TestKMAssignReplyFlat(t *testing.T) {
	acc := &kmeans.AccumWire{
		Idx:     [][]uint32{{0, 2}, {}},
		Val:     [][]float64{{1.5, -2.25}, {}},
		Counts:  []int64{3, 0},
		Inertia: 7.5,
		Changed: 2,
		Skipped: 4,
	}
	for _, rep := range []*KMAssignReply{
		{Accum: acc, Assign: []int32{0, 1, 0}, Dists: []float64{0.5, 1.5, 2.5}},
		{Accum: acc, Assign: []int32{1, 1, 0}},
	} {
		got, err := DecodeFlatKMAssignReply(rep.EncodeFlat())
		if err != nil {
			t.Fatalf("DecodeFlatKMAssignReply: %v", err)
		}
		if !reflect.DeepEqual(got.Assign, rep.Assign) || !reflect.DeepEqual(got.Dists, rep.Dists) {
			t.Errorf("assign/dists round trip: got %v/%v", got.Assign, got.Dists)
		}
		if !reflect.DeepEqual(got.Accum.Counts, acc.Counts) ||
			math.Float64bits(got.Accum.Inertia) != math.Float64bits(acc.Inertia) ||
			got.Accum.Changed != acc.Changed || got.Accum.Skipped != acc.Skipped {
			t.Errorf("accum round trip: got %+v", got.Accum)
		}
	}

	good := (&KMAssignReply{Accum: acc, Assign: []int32{0, 1}}).EncodeFlat()
	badMarker := append([]byte{}, good...)
	badMarker[len(badMarker)-4] = 7 // distance marker is the trailing u32
	for name, b := range map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte{1, 1, 1, 1}, good[4:]...),
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte{}, good...), 0xff),
		"bad marker": badMarker,
	} {
		if rep, err := DecodeFlatKMAssignReply(b); err == nil {
			t.Errorf("%s: decoded without error: %+v", name, rep)
		}
	}
}
