package workflow

import "reflect"

// Rewriter is a declarative plan-to-plan transformation, applied to a
// validated DAG before execution. Rewrite returns the transformed plan and
// whether anything changed; implementations must treat the input plan as
// immutable and return it unchanged (false) when the rule does not apply.
//
// Workflow fusion — the paper's Section 3.3 optimization — is one rewrite
// rule among several (FuseRule); SharedScanRule deduplicates identical
// source scans.
type Rewriter interface {
	// Name identifies the rule in diagnostics.
	Name() string
	// Rewrite applies the rule once; callers iterate to a fixpoint.
	Rewrite(p *Plan) (*Plan, bool)
}

// Apply runs each rewriter to its fixpoint, in order, and returns the
// rewritten plan. The receiver is never mutated.
func (p *Plan) Apply(rules ...Rewriter) *Plan {
	out := p
	for _, r := range rules {
		for {
			next, changed := r.Rewrite(out)
			if !changed {
				break
			}
			out = next
		}
	}
	return out
}

// FuseRule returns the fusion rewriter: every materialize -> load edge
// anywhere in the graph is canceled, reconnecting the materializer's
// producer directly to the loader's consumers so the intermediate dataset
// stays in memory. This is the paper's fusion of discrete operators into
// "single binaries that encapsulate a complex workflow", generalized from
// the linear engine's adjacent-pair scan to arbitrary DAGs.
//
// A materializer kept alive by other consumers (for example an ARFF archive
// that is also a sink) survives; only the loader and, when nothing else
// reads it, the materializer are removed. The pair is canceled only when
// the bypass type-checks: the producer's output must be assignable to every
// consumer port the loader fed.
func FuseRule() Rewriter { return fuseRule{} }

type fuseRule struct{}

func (fuseRule) Name() string { return "fuse" }

func (fuseRule) Rewrite(p *Plan) (*Plan, bool) {
	for _, e := range p.edges {
		fromN, toN := p.nodes[e.From], p.nodes[e.To]
		if fromN == nil || toN == nil {
			continue
		}
		if _, ok := fromN.op.(materializer); !ok {
			continue
		}
		if _, ok := toN.op.(loader); !ok {
			continue
		}
		if next, ok := cancelPair(p, e); ok {
			return next, true
		}
	}
	return p, false
}

// cancelPair removes the materialize/load pair around edge e (m -> l),
// rewiring l's consumers to m's producer. It declines (returns false) when
// the bypass would not type-check.
func cancelPair(p *Plan, e Edge) (*Plan, bool) {
	m, l := e.From, e.To
	producer, hasProducer := p.producerOf(m, 0)
	consumers := p.consumersOf(l)
	if hasProducer {
		out := outPort(p.nodes[producer.From].op)
		for _, ce := range consumers {
			want := inPorts(p.nodes[ce.To].op)[ce.Port]
			if !portAssignable(out, want) {
				return nil, false
			}
		}
	}
	// The materializer survives if anything else consumes its reference.
	dropM := true
	for _, me := range p.consumersOf(m) {
		if me != e {
			dropM = false
			break
		}
	}

	next := NewPlan()
	for _, name := range p.order {
		if name == l || (dropM && name == m) {
			continue
		}
		next.Add(name, p.nodes[name].op)
	}
	for _, old := range p.edges {
		switch {
		case old == e: // the canceled pair
		case old.To == l: // other feeds into the loader (none for port 0)
		case old.From == l: // loader consumers are rewired below
		case dropM && old.To == m: // producer -> materializer
		default:
			next.edges = append(next.edges, old)
		}
	}
	if hasProducer {
		for _, ce := range consumers {
			next.edges = append(next.edges, Edge{From: producer.From, To: ce.To, Port: ce.Port})
		}
	}
	next.errs = append(next.errs, p.errs...)
	next.inheritNotes(p)
	return next, true
}

// fragNode is one node of a partition-expansion fragment, named by suffix.
type fragNode struct {
	suffix string
	op     Operator
}

// fragment is the per-shard map/reduce subgraph an operator expands into
// under PartitionRule. Edge endpoints are node suffixes; in is the map
// entry receiving the partitioned input on port 0, out the node whose
// output replaces the original operator's.
type fragment struct {
	nodes []fragNode
	edges []Edge
	in    string
	out   string
}

// partitionable is implemented by operators that can be decomposed into an
// equivalent per-shard map/reduce subgraph (per-partition kernels plus
// explicit reductions) producing bit-identical output.
type partitionable interface {
	Operator
	partitionFragment() fragment
}

// PartitionRule returns the sharding rewriter: every partitionable
// operator fed directly by a document source (TFIDFOp, WordCountOp) is
// expanded into its per-shard map/reduce subgraph, with a PartitionOp
// inserted after the scan to carve the corpus into shards, and every
// KMeansOp is expanded into the iterative loop stages — <node>.assign (a
// KMAssignOp hosting the per-shard assignment loop on the executor's
// IterativeOp contract) feeding <node>.reduce (the join with the upstream
// dataset). Expanded nodes are named <node>.<stage> ("tfidf.map",
// "tfidf.df", "kmeans.assign", ...); consumers of several partitionable
// operators off one scan share a single <scan>.shards partition node, so
// partitioning pushes through shared scans, and the rule composes with
// FuseRule — a discrete plan's materialize/load pair downstream of the
// expansion cancels exactly as before.
//
// When the K-Means producer is the partitioned TF/IDF's streaming gather,
// the assignment stage is rewired onto the transform's vector shards
// directly (shard payloads carry precomputed norms and the vocabulary
// dimension), so the loop input does not depend on the monolithic result
// assembly; the gathered result still feeds the reduce stage for document
// names and the retained scores.
//
// shards fixes the partition count — for the map stages and, initially,
// the K-Means loop (the loop count is retuned independently by the
// optimizer); 0 selects the automatic count (2×GOMAXPROCS, see
// PartitionOp.Shards) at execution time. The rewrite never changes
// results: shard boundaries are deterministic, document frequencies merge
// commutatively, term IDs are assigned in lexicographic order, and the
// K-Means per-iteration reduce merges shard accumulators in shard-index
// order, so scores and cluster assignments are bit-identical to the
// unpartitioned plan at any shard count.
func PartitionRule(shards int) Rewriter { return &partitionRule{shards: shards} }

// WeightedPartitionRule is PartitionRule with byte-balanced shard
// boundaries: the inserted PartitionOp carves shards holding close to
// equal byte volume (within one document) instead of equal document
// counts, flattening the straggler tail on heavy-tailed document sizes.
// Results are bit-identical either way.
func WeightedPartitionRule(shards int) Rewriter {
	return &partitionRule{shards: shards, byteWeighted: true}
}

type partitionRule struct {
	shards       int
	byteWeighted bool
}

func (*partitionRule) Name() string { return "partition" }

func (r *partitionRule) Rewrite(p *Plan) (*Plan, bool) {
	for _, name := range p.order {
		n := p.nodes[name]
		if pa, ok := n.op.(partitionable); ok && len(inPorts(n.op)) == 1 {
			prod, hasProd := p.producerOf(name, 0)
			if !hasProd {
				continue
			}
			prodOp := p.nodes[prod.From].op
			out := outPort(prodOp)
			if out == anyType || !out.AssignableTo(sourceType) {
				continue // not a document source; leave the monolith alone
			}
			return r.expand(p, name, pa.partitionFragment(), prod), true
		}
		if km, ok := n.op.(*KMeansOp); ok {
			if prod, hasProd := p.producerOf(name, 0); hasProd {
				return r.expandLoop(p, name, km, prod), true
			}
		}
	}
	return p, false
}

// expandLoop replaces a KMeansOp node with the iterative loop stages:
// <name>.assign (the IterativeOp hosting the per-shard assignment loop)
// and <name>.reduce (joining the loop result with the upstream dataset).
// When the producer is the partitioned TF/IDF gather, the assignment is
// fed the transform's vector shards directly.
func (r *partitionRule) expandLoop(p *Plan, name string, km *KMeansOp, prod Edge) *Plan {
	assign, reduce := name+".assign", name+".reduce"
	next := NewPlan()
	for _, nm := range p.order {
		if nm == name {
			next.Add(assign, &KMAssignOp{Opts: km.Opts, Shards: r.shards})
			next.Add(reduce, &KMReduceOp{})
			continue
		}
		next.Add(nm, p.nodes[nm].op)
	}
	feed := prod.From
	if _, isGather := p.nodes[prod.From].op.(*GatherOp); isGather {
		if te, ok := p.producerOf(prod.From, 0); ok {
			feed = te.From // the transform's vector shards, gathered
		}
	}
	for _, e := range p.edges {
		switch {
		case e.To == name: // the producer edge, replaced by the loop wiring
		case e.From == name:
			next.edges = append(next.edges, Edge{From: reduce, To: e.To, Port: e.Port})
		default:
			next.edges = append(next.edges, e)
		}
	}
	next.edges = append(next.edges, Edge{From: feed, To: assign, Port: 0})
	next.edges = append(next.edges, Edge{From: assign, To: reduce, Port: 0})
	next.edges = append(next.edges, Edge{From: prod.From, To: reduce, Port: 1})
	next.errs = append(next.errs, p.errs...)
	next.inheritNotes(p)
	if note := p.notes[name]; note != "" {
		next.Annotate(assign, note)
	}
	return next
}

// expand replaces node name with its fragment, wired through a partition
// node after the producer (reused if the producer already is a Splitter or
// an earlier expansion created one).
func (r *partitionRule) expand(p *Plan, name string, frag fragment, prod Edge) *Plan {
	partName := prod.From
	newPart := false
	if _, isSplit := p.nodes[prod.From].op.(Splitter); !isSplit {
		partName = prod.From + ".shards"
		if existing := p.nodes[partName]; existing == nil {
			newPart = true
		} else if _, ok := existing.op.(Splitter); !ok {
			// The name is taken by an unrelated node; shard privately.
			partName = name + ".shards"
			newPart = true
		}
	}
	next := NewPlan()
	for _, nm := range p.order {
		if nm == name {
			for _, fn := range frag.nodes {
				next.Add(name+"."+fn.suffix, fn.op)
			}
			continue
		}
		next.Add(nm, p.nodes[nm].op)
	}
	if newPart {
		next.Add(partName, &PartitionOp{Shards: r.shards, ByteWeighted: r.byteWeighted})
	}
	for _, e := range p.edges {
		switch {
		case e.To == name: // the producer edge, replaced by partition wiring
		case e.From == name:
			next.edges = append(next.edges, Edge{From: name + "." + frag.out, To: e.To, Port: e.Port})
		default:
			next.edges = append(next.edges, e)
		}
	}
	if newPart {
		next.edges = append(next.edges, Edge{From: prod.From, To: partName, Port: 0})
	}
	next.edges = append(next.edges, Edge{From: partName, To: name + "." + frag.in, Port: 0})
	for _, fe := range frag.edges {
		next.edges = append(next.edges, Edge{From: name + "." + fe.From, To: name + "." + fe.To, Port: fe.Port})
	}
	next.errs = append(next.errs, p.errs...)
	next.inheritNotes(p)
	// The expanded node's annotation (e.g. the optimizer's dictionary
	// decision) describes the operator configuration its fragment inherits;
	// keep it visible on the fragment's entry node.
	if note := p.notes[name]; note != "" {
		next.Annotate(name+"."+frag.in, note)
	}
	return next
}

// SharedScanRule returns the scan-deduplication rewriter: when several
// zero-input nodes scan the same underlying data (equal scanner.ScanKey),
// all consumers are rewired onto the first such node and the duplicates are
// removed, so a corpus feeding word-count and TF/IDF through two separate
// SourceOp nodes is read once.
func SharedScanRule() Rewriter { return sharedScanRule{} }

type sharedScanRule struct{}

func (sharedScanRule) Name() string { return "shared-scan" }

func (sharedScanRule) Rewrite(p *Plan) (*Plan, bool) {
	canonical := make(map[any]string)
	replace := make(map[string]string) // duplicate node -> canonical node
	for _, name := range p.order {
		op := p.nodes[name].op
		s, ok := op.(scanner)
		if !ok || len(inPorts(op)) != 0 {
			continue
		}
		key := s.ScanKey()
		if key == nil || !reflect.TypeOf(key).Comparable() {
			continue
		}
		if first, ok := canonical[key]; ok {
			replace[name] = first
		} else {
			canonical[key] = name
		}
	}
	if len(replace) == 0 {
		return p, false
	}
	next := NewPlan()
	for _, name := range p.order {
		if _, dup := replace[name]; dup {
			continue
		}
		next.Add(name, p.nodes[name].op)
	}
	for _, e := range p.edges {
		if to, dup := replace[e.From]; dup {
			e.From = to
		}
		next.edges = append(next.edges, e)
	}
	next.errs = append(next.errs, p.errs...)
	next.inheritNotes(p)
	return next, true
}
