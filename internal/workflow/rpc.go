package workflow

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"hpa/internal/flatwire"
	"hpa/internal/obs"
)

// This file implements the RPC execution backend and its worker side: a
// net/rpc + gob protocol carrying (kernel name, gob args) requests to
// worker processes and gob replies back. A worker is this same binary in
// worker mode (cmd/hpa-workflow -worker) serving the kernel registry; the
// coordinator's RPCBackend ships every task that has a RemoteTask
// descriptor and runs everything else in-process. Workers are stateless
// except for the loop-shard session cache (kernels.go), which affinity
// routing keeps on one worker per shard.

// KernelFunc executes one registered worker kernel: gob-encoded arguments
// in, gob-encoded reply out.
type KernelFunc func(args []byte) ([]byte, error)

var (
	kernelMu sync.RWMutex
	kernels  = make(map[string]KernelFunc)
)

// RegisterKernel adds a kernel to the worker registry under the given op
// name — the name RemoteTask.Op resolves against on the worker. The
// built-in kernels (tfidf.count, tfidf.transform, kmeans.assign,
// kmeans.seed) register themselves; registering a taken name panics, like
// http.Handle.
func RegisterKernel(name string, fn KernelFunc) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic(fmt.Sprintf("workflow: kernel %q registered twice", name))
	}
	kernels[name] = fn
}

// RPCRequest is one task shipped to a worker.
type RPCRequest struct {
	// Op is the kernel name in the registry.
	Op string
	// Body is the gob-encoded kernel argument.
	Body []byte
}

// RPCResponse is a worker's reply.
type RPCResponse struct {
	// Body is the gob-encoded kernel result.
	Body []byte
}

// Worker is the net/rpc service a worker process exposes.
type Worker struct{}

// Run executes one registered kernel. Kernel errors return as RPC errors,
// which the coordinator wraps with worker identity.
func (Worker) Run(req *RPCRequest, resp *RPCResponse) error {
	kernelMu.RLock()
	fn := kernels[req.Op]
	kernelMu.RUnlock()
	if fn == nil {
		return fmt.Errorf("workflow: worker has no kernel %q (version mismatch?)", req.Op)
	}
	body, err := fn(req.Body)
	if err != nil {
		return err
	}
	resp.Body = body
	return nil
}

// newWorkerServer returns an rpc.Server serving the Worker service (a
// fresh instance per listener, so tests can serve several workers in one
// process).
func newWorkerServer() *rpc.Server {
	s := rpc.NewServer()
	if err := s.RegisterName("Worker", Worker{}); err != nil {
		panic(err) // static registration; cannot fail
	}
	return s
}

// ServeWorkerConn serves the worker protocol on one connection until it
// closes — the in-process form (net.Pipe) the tests and the calibration
// use.
func ServeWorkerConn(conn io.ReadWriteCloser) {
	newWorkerServer().ServeConn(conn)
}

// ServeWorker accepts connections on lis and serves each until it closes.
// It returns the first Accept error (closing the listener shuts the worker
// down).
func ServeWorker(lis net.Listener) error {
	s := newWorkerServer()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ListenAndServeWorker runs a worker on the given TCP address (the
// cmd/hpa-workflow -worker mode). ready, when non-nil, receives the bound
// address once listening — how a parent process spawning workers on ":0"
// learns the chosen ports.
func ListenAndServeWorker(addr string, ready chan<- string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("workflow: worker listen %s: %w", addr, err)
	}
	if ready != nil {
		ready <- lis.Addr().String()
	}
	return ServeWorker(lis)
}

// RPCBackend ships remotable shard tasks to worker processes over net/rpc
// and runs everything else in-process. Tasks without an affinity key are
// spread round-robin; tasks sharing one stick to the worker that first
// received the key. A failed worker call fails the task (and with it the
// plan run) with a wrapped error — there is no silent retry, because a
// retried loop shard could observe different session state and break the
// bit-identical contract.
type RPCBackend struct {
	clients []*rpc.Client
	labels  []string

	mu       sync.Mutex
	affinity map[string]int
	scopes   map[string]map[string]struct{}
	next     int

	// shipEWMA tracks the measured wall-clock of worker round trips
	// (encode + net/rpc call + reply decode inside Call) in nanoseconds, as
	// an exponentially weighted moving average; shipCount counts samples.
	// This is the feedback signal the cost model's RPCShipNS — a loopback
	// lower bound measured at calibration time — can be compared against
	// after a real run (cmd/hpa-workflow prints both).
	shipEWMA  float64
	shipCount int64
}

// shipAlpha is the EWMA weight of the newest ship-time sample.
const shipAlpha = 0.2

// NewRPCBackend dials the given worker addresses (TCP) and returns a
// backend over them. All workers must be reachable; on error, already
// dialed connections are closed.
func NewRPCBackend(addrs []string) (*RPCBackend, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("workflow: rpc backend needs at least one worker address")
	}
	b := &RPCBackend{affinity: make(map[string]int), scopes: make(map[string]map[string]struct{})}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("workflow: dial worker %s: %w", addr, err)
		}
		b.clients = append(b.clients, c)
		b.labels = append(b.labels, addr)
	}
	return b, nil
}

// NewRPCBackendClients wraps already-established rpc clients (e.g. over
// net.Pipe with ServeWorkerConn on the other end) — the in-process form
// used by tests and benchmarks.
func NewRPCBackendClients(clients ...*rpc.Client) *RPCBackend {
	b := &RPCBackend{clients: clients, affinity: make(map[string]int), scopes: make(map[string]map[string]struct{})}
	for i := range clients {
		b.labels = append(b.labels, fmt.Sprintf("client%d", i))
	}
	return b
}

// Close closes the worker connections.
func (b *RPCBackend) Close() error {
	var first error
	for _, c := range b.clients {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Name implements Backend.
func (b *RPCBackend) Name() string { return "rpc" }

// Workers implements Backend.
func (b *RPCBackend) Workers() int { return len(b.clients) }

// pick selects the worker for an affinity key ("" = plain round-robin) and
// reports whether the key was already pinned (an affinity session hit).
// A non-empty scope records the key against the task's plan run, so
// ReleaseScope can drop every pin the run created even when the run never
// reached its own targeted release (an error mid-loop, an operator without
// a finish hook).
func (b *RPCBackend) pick(key, scope string) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if key != "" {
		if i, ok := b.affinity[key]; ok {
			return i, true
		}
	}
	i := b.next % len(b.clients)
	b.next++
	if key != "" {
		b.affinity[key] = i
		if scope != "" {
			set := b.scopes[scope]
			if set == nil {
				set = make(map[string]struct{})
				b.scopes[scope] = set
			}
			set[key] = struct{}{}
		}
	}
	return i, false
}

// ReleaseAffinity drops affinity pins, so a long-lived backend serving
// many plan runs does not accumulate one map entry per finished loop
// shard (session keys are loop-unique and can never be picked again).
// Loop states release their keys when the loop finishes.
func (b *RPCBackend) ReleaseAffinity(keys ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range keys {
		delete(b.affinity, k)
	}
}

// ReleaseScope drops every affinity pin recorded under the given plan-run
// scope — the executor calls it when Plan.Run returns, success or error.
// Keys a loop state already released individually are simply absent. This
// is what keeps a resident serve backend's affinity map bounded by the
// in-flight runs rather than by the runs ever admitted.
func (b *RPCBackend) ReleaseScope(scope string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.scopes[scope] {
		delete(b.affinity, k)
	}
	delete(b.scopes, scope)
}

// PinnedAffinities reports how many affinity pins the backend currently
// holds — observability for tests and the serve path's leak accounting.
func (b *RPCBackend) PinnedAffinities() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.affinity)
}

// MeasuredShipNS returns the EWMA of observed worker round-trip times in
// nanoseconds and the number of samples behind it (0, 0 before any remote
// task ran). Compare against CostModel.RPCShipNS to see how far the
// calibrated loopback lower bound sits from this deployment's reality.
func (b *RPCBackend) MeasuredShipNS() (float64, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shipEWMA, b.shipCount
}

// observeShip folds one measured round trip into the EWMA.
func (b *RPCBackend) observeShip(ns float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shipCount == 0 {
		b.shipEWMA = ns
	} else {
		b.shipEWMA += shipAlpha * (ns - b.shipEWMA)
	}
	b.shipCount++
}

// RunTask implements Backend: tasks with a remote descriptor ship to a
// worker; the rest run in-process. The shipped task's wall-clock time
// (encode + RPC + decode + absorb) is accounted to the descriptor's phase
// key, so breakdowns keep their meaning.
func (b *RPCBackend) RunTask(ctx *Context, t *Task) (Value, error) {
	rt := t.Remote
	if rt == nil {
		return t.Run()
	}
	var span *obs.Span // nil on untraced runs; annotated in place when present
	var tracer *obs.Tracer
	if ctx != nil {
		span, tracer = ctx.Span, ctx.Tracer
	}
	call := func() (Value, error) {
		i, pinned := b.pick(rt.Affinity, rt.Scope)
		if span != nil {
			span.Worker = b.labels[i]
			span.Codec = rt.Codec
			// Attribute the XOR value-block traffic this call decodes (and,
			// over a pipe worker, encodes) to the span as deltas of the
			// process-wide counters.
			vRaw0, vCoded0 := flatwire.ValueBytes()
			defer func() {
				raw, coded := flatwire.ValueBytes()
				span.ValueRawBytes += raw - vRaw0
				span.ValueCodedBytes += coded - vCoded0
			}()
			if pinned {
				tracer.Emit("wire", "affinity-hit", rt.Affinity, int64(i))
			}
		}
		ship := func(args any) ([]byte, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(args); err != nil {
				return nil, fmt.Errorf("workflow: rpc backend: encode %s args: %w", rt.Op, err)
			}
			start := time.Now()
			var resp RPCResponse
			if err := b.clients[i].Call("Worker.Run", &RPCRequest{Op: rt.Op, Body: buf.Bytes()}, &resp); err != nil {
				return nil, fmt.Errorf("workflow: rpc backend: worker %s: task %s: %w", b.labels[i], rt.Op, err)
			}
			b.observeShip(float64(time.Since(start)))
			if span != nil {
				span.BytesOut += int64(buf.Len())
				span.BytesIn += int64(len(resp.Body))
			}
			return resp.Body, nil
		}
		body, err := ship(rt.Args)
		if err != nil {
			return nil, err
		}
		out, err := rt.Absorb(body)
		var nr *needResend
		if errors.As(err, &nr) {
			// Cache miss: the worker lacks a body the first send replaced
			// with its key. Re-send the inlined form to the SAME worker —
			// any other would miss again — and absorb the second reply. A
			// second miss is a protocol violation, surfaced as an error.
			if span != nil {
				span.Resend = true
				tracer.Emit("wire", "cache-miss-resend", rt.Op, int64(i))
			}
			if body, err = ship(nr.Args); err != nil {
				return nil, err
			}
			if out, err = rt.Absorb(body); err != nil {
				if errors.As(err, &nr) {
					return nil, fmt.Errorf("workflow: rpc backend: worker %s: task %s: cache miss after inlined resend", b.labels[i], rt.Op)
				}
				return nil, err
			}
		}
		return out, err
	}
	if rt.Phase == "" || ctx == nil || ctx.Breakdown == nil {
		return call()
	}
	var out Value
	err := ctx.Breakdown.TimeSpanErr(rt.Phase, func() error {
		var cerr error
		out, cerr = call()
		return cerr
	})
	return out, err
}
