package workflow

import (
	"context"

	"hpa/internal/metrics"
	"hpa/internal/obs"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/simsched"
)

// Env is the resident, request-independent half of what Context used to
// entangle: the process-lifetime execution environment a long-lived server
// holds once and shares across every plan run — the worker pool, the
// storage model, scratch space and the execution backend. The per-run half
// (breakdown, recorder, observer, cancellation) stays in Context; NewRun
// mints a fresh Context against the shared environment for each request,
// so concurrent runs never share mutable per-run state.
//
// A batch process can keep building Contexts directly; Env earns its keep
// when one process serves many runs (hpa-serve holds one Env for its whole
// lifetime and calls NewRun per admitted plan).
type Env struct {
	// Pool supplies intra-node parallelism; shared by every run.
	Pool *par.Pool
	// Disk models the storage device for inputs and intermediates; nil
	// means unthrottled.
	Disk *pario.DiskSim
	// ScratchDir hosts intermediate files (discrete workflows, cost-model
	// cache).
	ScratchDir string
	// Backend selects where shard tasks execute (nil = in-process).
	Backend Backend
	// Tracer, when non-nil, is attached to every run's Context so resident
	// servers trace all plans into one collector (nil = untraced).
	Tracer *obs.Tracer
}

// NewEnv returns an environment over the pool.
func NewEnv(pool *par.Pool) *Env { return &Env{Pool: pool} }

// NewRun mints a per-run Context over the shared environment: fresh
// breakdown, no recorder or observer, cancelled by ctx (which may be nil).
// The returned Context is the one run's private state; the environment
// fields are shared.
func (e *Env) NewRun(ctx context.Context) *Context {
	return &Context{
		Pool:       e.Pool,
		Disk:       e.Disk,
		Breakdown:  metrics.NewBreakdown(),
		ScratchDir: e.ScratchDir,
		Ctx:        ctx,
		Backend:    e.Backend,
		Tracer:     e.Tracer,
	}
}

// NewRecordedRun is NewRun with a simsched recorder attached, for runs
// whose trace should be captured.
func (e *Env) NewRecordedRun(ctx context.Context, rec *simsched.Recorder) *Context {
	c := e.NewRun(ctx)
	c.Recorder = rec
	return c
}
