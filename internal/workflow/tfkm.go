package workflow

import (
	"fmt"

	"hpa/internal/dict"
	"hpa/internal/kmeans"
	"hpa/internal/metrics"
	"hpa/internal/pario"
	"hpa/internal/tfidf"
)

// Mode selects between the paper's two executions of the TF/IDF→K-Means
// workflow (Figure 3).
type Mode int

const (
	// Discrete runs TF/IDF and K-Means as separate operators communicating
	// through an ARFF file on disk.
	Discrete Mode = iota
	// Merged fuses the two operators into one image; the TF/IDF scores
	// stay in memory.
	Merged
)

// String returns the paper's label for the mode.
func (m Mode) String() string {
	switch m {
	case Discrete:
		return "discrete"
	case Merged:
		return "merged"
	default:
		return "unknown"
	}
}

// TFKMConfig configures the TF/IDF→K-Means workflow.
type TFKMConfig struct {
	// Mode selects discrete or merged execution.
	Mode Mode
	// Shards selects partitioned execution: with Shards != 0, PartitionRule
	// shards the corpus scan and expands TF/IDF into per-shard map kernels
	// plus reductions (Shards < 0 means auto: 2×GOMAXPROCS shards, over-
	// decomposed so work stealing rebalances stragglers; see
	// PartitionOp.Shards). Shards == 0 keeps the bulk-synchronous
	// single-operator plan. Results are bit-identical either way, at any
	// shard count.
	Shards int
	// TFIDF configures the text operator.
	TFIDF tfidf.Options
	// KMeans configures the clustering operator.
	KMeans kmeans.Options
	// Backend, when non-nil, selects where shard tasks execute (RunTFKM
	// installs it as the context's Backend): LocalBackend in-process, an
	// RPCBackend shipping serializable shard tasks to worker processes.
	// Results are bit-identical either way.
	Backend Backend
}

// TFKMPipeline constructs the workflow as a linear chain. The discrete
// pipeline contains the materialize/load pair; Merged is exactly
// Fuse(discrete).
func TFKMPipeline(cfg TFKMConfig) *Pipeline {
	p := NewPipeline(
		&TFIDFOp{Opts: cfg.TFIDF},
		&MaterializeARFF{},
		&LoadARFF{},
		&KMeansOp{Opts: cfg.KMeans},
		&WriteAssignments{},
	)
	if cfg.Mode == Merged {
		return Fuse(p)
	}
	return p
}

// TFKMPlan constructs the workflow over src as a Plan. The discrete plan
// contains the materialize/load pair; Merged is exactly the discrete plan
// with the fusion rule applied. With cfg.Shards != 0, PartitionRule then
// shards the dataflow: the scan splits into partitions and TF/IDF expands
// into per-shard map kernels around its reductions.
func TFKMPlan(src pario.Source, cfg TFKMConfig) *Plan {
	p := NewPlan().
		Add("scan", &SourceOp{Src: src}).
		Add("tfidf", &TFIDFOp{Opts: cfg.TFIDF}).
		Add("materialize-arff", &MaterializeARFF{}).
		Add("load-arff", &LoadARFF{}).
		Add("kmeans", &KMeansOp{Opts: cfg.KMeans}).
		Add("output", &WriteAssignments{}).
		Connect("scan", "tfidf").
		Connect("tfidf", "materialize-arff").
		Connect("materialize-arff", "load-arff").
		Connect("load-arff", "kmeans").
		Connect("kmeans", "output")
	if cfg.Mode == Merged {
		p = p.Apply(FuseRule())
	}
	if cfg.Shards != 0 {
		shards := cfg.Shards
		if shards < 0 {
			shards = 0 // PartitionOp resolves 0 to GOMAXPROCS
		}
		p = p.Apply(PartitionRule(shards))
	}
	return p
}

// TFKMReport is the outcome of a workflow run.
type TFKMReport struct {
	// Clustering is the final dataset.
	Clustering *Clustering
	// Breakdown holds per-phase times: input+wc, [tfidf-output,
	// kmeans-input,] transform, kmeans, output.
	Breakdown *metrics.Breakdown
	// DictFootprint is the TF/IDF dictionary memory (Figure 4's
	// measurement); zero in discrete mode after the operator exits only if
	// the result was dropped — it is captured before that.
	DictFootprint int64
	// DictStats carries the global dictionary's counters (rehashes for the
	// hash kind, rotations for the tree kind).
	DictStats dict.Stats
}

// RunTFKM executes the workflow over src in the given context. A
// cfg.Backend overrides the context's backend for this run.
func RunTFKM(src pario.Source, ctx *Context, cfg TFKMConfig) (*TFKMReport, error) {
	if cfg.Backend != nil {
		c := *ctx
		c.Backend = cfg.Backend
		ctx = &c
	}
	return RunTFKMPlan(TFKMPlan(src, cfg), ctx)
}

// RunTFKMPlan executes an already-built TF/IDF→K-Means plan — for example
// one transformed by rewrite rules or by the plan optimizer — capturing the
// same report a RunTFKM call produces. The plan must contain a sink
// producing a *Clustering (the "output" node of TFKMPlan, or any node
// surviving a rewrite of it).
func RunTFKMPlan(plan *Plan, ctx *Context) (*TFKMReport, error) {
	if ctx.Breakdown == nil {
		ctx.Breakdown = metrics.NewBreakdown()
	}

	// Capture the dictionary footprint when the TF/IDF operator finishes,
	// regardless of mode — in discrete mode the result is dropped once
	// materialized.
	var foot int64
	var stats dict.Stats
	prevObserve := ctx.Observe
	ctx.Observe = func(op Operator, out Value) {
		if r, ok := out.(*tfidf.Result); ok {
			foot = r.DictFootprint
			stats = r.GlobalStats
		}
		if prevObserve != nil {
			prevObserve(op, out)
		}
	}
	defer func() { ctx.Observe = prevObserve }()

	outs, err := plan.Run(ctx)
	if err != nil {
		return nil, err
	}
	cl, ok := outs["output"].(*Clustering)
	if !ok {
		// A rewritten plan may have renamed the sink; the first *Clustering
		// sink in plan node order (deterministic) is the workflow outcome.
		for _, name := range plan.Nodes() {
			if c, isCl := outs[name].(*Clustering); isCl {
				cl, ok = c, true
				break
			}
		}
	}
	if !ok {
		if v, present := outs["output"]; present {
			return nil, fmt.Errorf("workflow: output node produced %T, not a clustering", v)
		}
		return nil, fmt.Errorf("workflow: plan has no clustering sink")
	}
	return &TFKMReport{Clustering: cl, Breakdown: ctx.Breakdown, DictFootprint: foot, DictStats: stats}, nil
}
