package workflow

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"hpa/internal/corpus"
	"hpa/internal/dict"
	"hpa/internal/kmeans"
	"hpa/internal/obs"
	"hpa/internal/par"
	"hpa/internal/tfidf"
)

// tracedTFKM runs the merged sharded TF/IDF→K-Means workflow with a tracer
// attached and returns the snapshot.
func tracedTFKM(t *testing.T, backend Backend, scratch string) *obs.Trace {
	t.Helper()
	src := diskCorpus(t)
	pool := par.NewPool(4)
	defer pool.Close()
	ctx := NewContext(pool)
	ctx.ScratchDir = scratch
	ctx.Backend = backend
	ctx.Tracer = obs.NewTracer()
	_, err := RunTFKM(src, ctx, TFKMConfig{
		Mode:   Merged,
		Shards: 4,
		TFIDF:  tfidf.Options{Normalize: true},
		KMeans: kmeans.Options{K: 8, Seed: 1},
	})
	if err != nil {
		t.Fatalf("RunTFKM(backend=%s): %v", backend.Name(), err)
	}
	return ctx.Tracer.Snapshot()
}

// spanKey is a span's backend-independent identity.
func spanKey(s *obs.Span) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d", s.Node, s.Op, s.Kind, s.Shard, s.Iter)
}

// TestCrossBackendSpanParity: local and RPC runs of the same plan must
// schedule the same task set — identical (node, op, kind, shard, iter)
// multisets, differing only in worker lanes and wire annotations.
func TestCrossBackendSpanParity(t *testing.T) {
	scratch := t.TempDir()
	local := tracedTFKM(t, LocalBackend{}, scratch)
	remote := tracedTFKM(t, pipeBackend(t, 2), scratch)

	keys := func(tr *obs.Trace) []string {
		out := make([]string, len(tr.Spans))
		for i := range tr.Spans {
			out[i] = spanKey(&tr.Spans[i])
		}
		sort.Strings(out)
		return out
	}
	lk, rk := keys(local), keys(remote)
	if len(lk) != len(rk) {
		t.Fatalf("span counts differ: local %d, rpc %d\nlocal: %v\nrpc: %v", len(lk), len(rk), lk, rk)
	}
	for i := range lk {
		if lk[i] != rk[i] {
			t.Fatalf("span sets diverge at %d: local %q, rpc %q", i, lk[i], rk[i])
		}
	}

	// The local run must not claim worker lanes; the RPC run must use some.
	if got := len(local.Workers()); got != 0 {
		t.Errorf("local run recorded %d worker lanes", got)
	}
	if got := len(remote.Workers()); got == 0 {
		t.Error("RPC run recorded no worker lanes")
	}
	// Remote shard tasks must carry wire accounting.
	var shipped int64
	for i := range remote.Spans {
		shipped += remote.Spans[i].BytesOut + remote.Spans[i].BytesIn
	}
	if shipped == 0 {
		t.Error("RPC run recorded no wire bytes")
	}
}

// TestTraceCoversEveryTask: span fields are complete — every span has a
// node, op, kind, backend and a coherent Queued<=Start<=End timeline, loop
// shard spans carry iterations starting at 0, the K-Means++ seeding rounds
// appear as prepare-wave spans (one per shard per round plus the round's
// draw barrier) with matching per-round events, and the K-Means loop
// emitted per-iteration events.
func TestTraceCoversEveryTask(t *testing.T) {
	tr := tracedTFKM(t, LocalBackend{}, t.TempDir())
	if len(tr.Spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	// tracedTFKM clusters with K=8 over 4 shards: K-Means++ runs K-1 seed
	// rounds, each scanning every shard before the coordinator draws.
	const wantRounds, wantShards = 7, 4
	iters := map[int]bool{}
	prepShards, prepEnds := map[int]int{}, map[int]int{}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if s.Node == "" || s.Op == "" || s.Kind == "" || s.Backend == "" {
			t.Fatalf("span %d incomplete: %+v", i, s)
		}
		if s.Queued.After(s.Start) || s.Start.After(s.End) {
			t.Fatalf("span %d has an incoherent timeline: %+v", i, s)
		}
		switch s.Kind {
		case "loop-shard":
			if s.Iter < 0 {
				t.Fatalf("loop-shard span without iteration: %+v", s)
			}
			iters[s.Iter] = true
		case "loop-prep":
			if s.Iter < 0 {
				t.Fatalf("loop-prep span without round: %+v", s)
			}
			prepShards[s.Iter]++
		case "loop-prep-end":
			if s.Iter < 0 {
				t.Fatalf("loop-prep-end span without round: %+v", s)
			}
			prepEnds[s.Iter]++
		case "run":
			if s.Iter != -1 {
				t.Fatalf("non-loop span claims iteration %d: %+v", s.Iter, s)
			}
		}
	}
	if !iters[0] {
		t.Errorf("loop iterations do not start at 0: %v", iters)
	}
	if len(prepShards) != wantRounds || len(prepEnds) != wantRounds {
		t.Errorf("seed rounds traced: %d prep waves, %d barriers, want %d of each",
			len(prepShards), len(prepEnds), wantRounds)
	}
	for round := 0; round < wantRounds; round++ {
		if prepShards[round] != wantShards {
			t.Errorf("seed round %d traced %d shard scans, want %d", round, prepShards[round], wantShards)
		}
		if prepEnds[round] != 1 {
			t.Errorf("seed round %d traced %d draw barriers, want 1", round, prepEnds[round])
		}
	}
	var kmEvents, seedEvents int
	for _, e := range tr.Events {
		switch {
		case e.Cat == "kmeans" && e.Name == "iteration":
			kmEvents++
		case e.Cat == "kmeans" && e.Name == "seed-round":
			seedEvents++
		}
	}
	if kmEvents != len(iters) {
		t.Errorf("kmeans iteration events %d != loop iterations %d", kmEvents, len(iters))
	}
	if seedEvents != wantRounds {
		t.Errorf("kmeans seed-round events %d != seed rounds %d", seedEvents, wantRounds)
	}
}

// BenchmarkTracingOverhead measures the cost of the tracing hooks over the
// full iterative plan: nil tracer (production default) versus an attached
// collector. The nil case must stay within noise of the pre-instrumentation
// baseline (BENCH_iterative); the assertion lives in the recorded bench
// deltas, this benchmark makes the comparison reproducible.
func BenchmarkTracingOverhead(b *testing.B) {
	c := corpus.Generate(corpus.Mix().Scaled(0.05), nil)
	for _, bc := range []struct {
		name   string
		traced bool
	}{{"nil-tracer", false}, {"traced", true}} {
		b.Run(bc.name, func(b *testing.B) {
			pool := par.NewPool(runtime.GOMAXPROCS(0))
			defer pool.Close()
			b.SetBytes(c.Bytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := NewPlan().
					Add("scan", &SourceOp{Src: c.Source(nil)}).
					Add("tfidf", &TFIDFOp{Opts: tfidf.Options{DictKind: dict.Tree, Normalize: true}}).
					Add("kmeans", &KMeansOp{Opts: kmeans.Options{K: 8, Seed: 42}}).
					Connect("scan", "tfidf").
					Connect("tfidf", "kmeans").
					Apply(PartitionRule(0))
				ctx := NewContext(pool)
				if bc.traced {
					ctx.Tracer = obs.NewTracer()
				}
				if _, err := plan.Run(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
