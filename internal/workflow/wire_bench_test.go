package workflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"hpa/internal/flatwire"
	"hpa/internal/kmeans"
	"hpa/internal/sparse"
	"hpa/internal/tfidf"
)

// benchVectorShard synthesizes a transform-reply-sized shard: 256 documents
// of ~64 sparse entries each, deterministic content.
func benchVectorShard() *tfidf.VectorShard {
	const docs, nnz = 256, 64
	vs := &tfidf.VectorShard{Lo: 0, Hi: docs, Dim: 1 << 16, DictFootprint: 1 << 20}
	vs.Vectors = make([]sparse.Vector, docs)
	vs.Norms = make([]float64, docs)
	vs.DocNames = make([]string, docs)
	for i := range vs.Vectors {
		idx := make([]uint32, nnz)
		val := make([]float64, nnz)
		norm := 0.0
		// Strictly ascending indices: the invariant sparse.Builder
		// guarantees for every real vector, and the contract the flat
		// codec's delta coding relies on.
		for e := range idx {
			idx[e] = uint32(i + e*1021)
			val[e] = float64(i+1) / float64(e+3)
			norm += val[e] * val[e]
		}
		vs.Vectors[i] = sparse.Vector{Idx: idx, Val: val}
		vs.Norms[i] = norm
		vs.DocNames[i] = fmt.Sprintf("corpus/shard-0/doc-%04d.txt", i)
	}
	return vs
}

// benchAccumWire synthesizes a kmeans.assign-reply-sized accumulator:
// 16 clusters of ~2000 sparse centroid-sum entries each.
func benchAccumWire() *kmeans.AccumWire {
	const k, nnz = 16, 2000
	w := &kmeans.AccumWire{
		Idx:     make([][]uint32, k),
		Val:     make([][]float64, k),
		Counts:  make([]int64, k),
		Inertia: 12345.678,
		Changed: 42,
		Skipped: 17,
	}
	for j := 0; j < k; j++ {
		idx := make([]uint32, nnz)
		val := make([]float64, nnz)
		for e := range idx {
			idx[e] = uint32(j*37 + e*13)
			val[e] = float64(j+1) * float64(e+1) / 7
		}
		w.Idx[j], w.Val[j], w.Counts[j] = idx, val, int64(100+j)
	}
	return w
}

// benchVectorShardQuantized is benchVectorShard with quantized values:
// runs of repeated products, the shape real TF/IDF vectors take when many
// terms in a document share a term frequency. Equal neighbors XOR to zero,
// so this is the corpus where the codec-3 value blocks earn their keep —
// benchVectorShard's dense rationals are the near-incompressible floor.
func benchVectorShardQuantized() *tfidf.VectorShard {
	vs := benchVectorShard()
	for i := range vs.Vectors {
		val := vs.Vectors[i].Val
		norm := 0.0
		for e := range val {
			val[e] = float64(1+e/16) / 4
			norm += val[e] * val[e]
		}
		vs.Norms[i] = norm
	}
	return vs
}

// BenchmarkWirePayloads compares the gob and flat codecs on the two hot
// worker→coordinator payloads — one encode+decode round trip per op, with
// the encoded size reported — quantifying what flattening the wire saves
// in bytes, time and allocations. The flat cases additionally report
// val%: the XOR-coded f64 value blocks' size as a percentage of their
// fixed-width form (flatwire.ValueBytes), on both the adversarial
// dense-rational corpus and the quantized repeated-value corpus. Run with
//
//	go test ./internal/workflow -run '^$' -bench WirePayloads -benchtime 100x
//
// (results folded into BENCH_pruned.json).
func BenchmarkWirePayloads(b *testing.B) {
	vs := benchVectorShard()
	qs := benchVectorShardQuantized()
	aw := benchAccumWire()

	// valuePct measures one encode's value-block compression via the
	// process-wide flatwire counters (encode-side delta only).
	valuePct := func(encode func() []byte) float64 {
		raw0, coded0 := flatwire.ValueBytes()
		encode()
		raw1, coded1 := flatwire.ValueBytes()
		if raw1 == raw0 {
			return 100
		}
		return 100 * float64(coded1-coded0) / float64(raw1-raw0)
	}

	b.Run("vectorshard/gob", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(vs); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
			var out tfidf.VectorShard
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "wire-bytes")
	})
	b.Run("vectorshard/flat", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			buf := vs.EncodeFlat(nil)
			size = len(buf)
			if _, err := tfidf.DecodeFlatVectorShard(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "wire-bytes")
		b.ReportMetric(valuePct(func() []byte { return vs.EncodeFlat(nil) }), "val%")
	})
	b.Run("vectorshard-quantized/gob", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(qs); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
			var out tfidf.VectorShard
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "wire-bytes")
	})
	b.Run("vectorshard-quantized/flat", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			buf := qs.EncodeFlat(nil)
			size = len(buf)
			if _, err := tfidf.DecodeFlatVectorShard(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "wire-bytes")
		b.ReportMetric(valuePct(func() []byte { return qs.EncodeFlat(nil) }), "val%")
	})
	b.Run("accum/gob", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(aw); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
			var out kmeans.AccumWire
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "wire-bytes")
	})
	b.Run("accum/flat", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			buf := aw.EncodeFlat(nil)
			size = len(buf)
			if _, err := kmeans.DecodeFlatAccumWire(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "wire-bytes")
		b.ReportMetric(valuePct(func() []byte { return aw.EncodeFlat(nil) }), "val%")
	})
}
