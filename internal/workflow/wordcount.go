package workflow

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"hpa/internal/dict"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/text"
)

// WordCounts is the output of WordCountOp: corpus-wide term frequencies.
type WordCounts struct {
	// Words and Counts are parallel, ordered by descending count (ties by
	// word).
	Words  []string
	Counts []uint64
	// TotalTokens is the token count across the corpus.
	TotalTokens uint64
}

// Top returns the n most frequent words.
func (w *WordCounts) Top(n int) []string {
	if n > len(w.Words) {
		n = len(w.Words)
	}
	return w.Words[:n]
}

// Count returns the frequency of a word (0 if absent).
func (w *WordCounts) Count(word string) uint64 {
	for i, wd := range w.Words {
		if wd == word {
			return w.Counts[i]
		}
	}
	return 0
}

// WordCountOp computes corpus-wide word frequencies — the canonical first
// analytics operator, included as a second instantiation of the workflow
// engine beyond TF/IDF→K-Means. Phase structure mirrors the paper's
// input+wc: parallel per-document tokenize-and-count into per-strand
// dictionaries, merged once at the end (a classic reducer).
type WordCountOp struct {
	// DictKind selects the per-strand dictionary implementation.
	DictKind dict.Kind
	// Stopwords, MinWordLen and Stem configure tokenization.
	Stopwords  *text.StopwordSet
	MinWordLen int
	Stem       bool
}

// Name implements Operator.
func (o *WordCountOp) Name() string { return "wordcount" }

// Inputs implements TypedOperator.
func (o *WordCountOp) Inputs() []reflect.Type { return []reflect.Type{sourceType} }

// Output implements TypedOperator.
func (o *WordCountOp) Output() reflect.Type { return wordCountsType }

// Run implements Operator: pario.Source -> *WordCounts.
func (o *WordCountOp) Run(ctx *Context, in Value) (Value, error) {
	src, ok := in.(pario.Source)
	if !ok {
		return nil, fmt.Errorf("%w: wordcount wants pario.Source, got %T", ErrType, in)
	}
	type strand struct {
		tk *text.Tokenizer
		m  dict.Map[uint64]
		n  uint64
	}
	strands := par.NewReducer(func() *strand {
		return &strand{
			tk: &text.Tokenizer{MinLen: o.MinWordLen, Stopwords: o.Stopwords, Stem: o.Stem},
			m:  dict.New[uint64](o.DictKind, dict.Options{}),
		}
	}, nil)

	var out *WordCounts
	err := ctx.Breakdown.TimeErr(tfidfPhaseInputWC, func() error {
		read := func(h func(int, []byte) error) error {
			if ctx.Ctx != nil {
				return pario.ReadAllContext(ctx.Ctx, src, ctx.Pool.Workers(), h)
			}
			return pario.ReadAll(src, ctx.Pool.Workers(), h)
		}
		if err := read(func(i int, content []byte) error {
			s := strands.Claim()
			s.tk.Tokens(content, func(tok []byte) {
				*s.m.RefBytes(tok)++
				s.n++
			})
			strands.Release(s)
			return nil
		}); err != nil {
			return err
		}

		// Merge per-strand dictionaries (serial: strand count is the peak
		// concurrency, not the corpus size).
		merged := dict.New[uint64](o.DictKind, dict.Options{})
		var total uint64
		for _, s := range strands.Views() {
			total += s.n
			s.m.Range(func(word string, c *uint64) bool {
				*merged.Ref(word) += *c
				return true
			})
		}
		out = buildWordCounts(merged, total)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// tfidfPhaseInputWC mirrors tfidf.PhaseInputWC without an import cycle.
const tfidfPhaseInputWC = "input+wc"

// partitionFragment implements partitionable: shard-local count maps plus
// a tree-merge reduction.
func (o *WordCountOp) partitionFragment() fragment {
	return fragment{
		nodes: []fragNode{
			{suffix: "map", op: &WordCountMapOp{
				DictKind: o.DictKind, Stopwords: o.Stopwords,
				MinWordLen: o.MinWordLen, Stem: o.Stem,
			}},
			{suffix: "reduce", op: &WordCountReduceOp{DictKind: o.DictKind}},
		},
		edges: []Edge{{From: "map", To: "reduce", Port: 0}},
		in:    "map",
		out:   "reduce",
	}
}

// buildWordCounts sorts a merged frequency dictionary into the operator's
// output order (descending count, ties by word — fully deterministic).
func buildWordCounts(merged dict.Map[uint64], total uint64) *WordCounts {
	out := &WordCounts{
		Words:       make([]string, 0, merged.Len()),
		Counts:      make([]uint64, 0, merged.Len()),
		TotalTokens: total,
	}
	merged.Range(func(word string, c *uint64) bool {
		out.Words = append(out.Words, word)
		out.Counts = append(out.Counts, *c)
		return true
	})
	sort.Sort(&byCountDesc{out})
	return out
}

// WCShard is the per-shard output of WordCountMapOp: one corpus shard's
// term frequencies and token count.
type WCShard struct {
	// Counts maps word to occurrences within the shard.
	Counts dict.Map[uint64]
	// Tokens is the shard's token count.
	Tokens uint64
}

// WordCountMapOp is the map kernel of the partitioned word count: it
// tokenizes and counts one corpus shard with no shared state, the
// shard-local half of WordCountOp.
type WordCountMapOp struct {
	// DictKind, Stopwords, MinWordLen and Stem mirror WordCountOp.
	DictKind   dict.Kind
	Stopwords  *text.StopwordSet
	MinWordLen int
	Stem       bool
}

// Name implements Operator.
func (o *WordCountMapOp) Name() string { return "wc-map" }

// Inputs implements TypedOperator.
func (o *WordCountMapOp) Inputs() []reflect.Type { return []reflect.Type{sourceType} }

// Output implements TypedOperator.
func (o *WordCountMapOp) Output() reflect.Type { return wcShardType }

// RunPartition implements PartitionKernel: pario.Source (one shard) ->
// *WCShard.
func (o *WordCountMapOp) RunPartition(ctx *Context, ins []Value, idx, total int) (Value, error) {
	src, ok := ins[0].(pario.Source)
	if !ok {
		return nil, fmt.Errorf("%w: wc-map wants pario.Source, got %T", ErrType, ins[0])
	}
	type strand struct {
		tk *text.Tokenizer
		m  dict.Map[uint64]
		n  uint64
	}
	strands := par.NewReducer(func() *strand {
		return &strand{
			tk: &text.Tokenizer{MinLen: o.MinWordLen, Stopwords: o.Stopwords, Stem: o.Stem},
			m:  dict.New[uint64](o.DictKind, dict.Options{}),
		}
	}, nil)
	readers := shardReaders(ctx, total)
	var out *WCShard
	err := ctx.Breakdown.TimeSpanErr(tfidfPhaseInputWC, func() error {
		read := func(h func(int, []byte) error) error {
			if ctx.Ctx != nil {
				return pario.ReadAllContext(ctx.Ctx, src, readers, h)
			}
			return pario.ReadAll(src, readers, h)
		}
		if err := read(func(i int, content []byte) error {
			s := strands.Claim()
			s.tk.Tokens(content, func(tok []byte) {
				*s.m.RefBytes(tok)++
				s.n++
			})
			strands.Release(s)
			return nil
		}); err != nil {
			return err
		}
		// Fold the shard's read strands (bounded by readers, typically 1).
		merged := dict.New[uint64](o.DictKind, dict.Options{})
		var total uint64
		for _, s := range strands.Views() {
			total += s.n
			s.m.Range(func(word string, c *uint64) bool {
				*merged.Ref(word) += *c
				return true
			})
		}
		out = &WCShard{Counts: merged, Tokens: total}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Run implements Operator: the whole source as a single shard.
func (o *WordCountMapOp) Run(ctx *Context, in Value) (Value, error) {
	return o.RunPartition(ctx, []Value{in}, 0, 1)
}

// WordCountReduceOp tree-merges the shard counts into the corpus-wide
// frequency table — word counts are commutative integer sums, so the
// result is bit-identical at any shard count.
type WordCountReduceOp struct {
	// DictKind selects the merge dictionary implementation.
	DictKind dict.Kind
}

// Name implements Operator.
func (o *WordCountReduceOp) Name() string { return "wc-reduce" }

// Inputs implements TypedOperator: the gathered shards.
func (o *WordCountReduceOp) Inputs() []reflect.Type { return []reflect.Type{partitionsType} }

// Output implements TypedOperator.
func (o *WordCountReduceOp) Output() reflect.Type { return wordCountsType }

// Run implements Operator: *Partitions of *WCShard (or one *WCShard) ->
// *WordCounts.
func (o *WordCountReduceOp) Run(ctx *Context, in Value) (Value, error) {
	var shards []*WCShard
	switch v := in.(type) {
	case *Partitions:
		shards = make([]*WCShard, 0, len(v.Parts))
		for _, part := range v.Parts {
			ws, ok := part.(*WCShard)
			if !ok {
				return nil, fmt.Errorf("%w: wc-reduce wants *WCShard shards, got %T", ErrType, part)
			}
			shards = append(shards, ws)
		}
	case *WCShard:
		shards = []*WCShard{v}
	default:
		return nil, fmt.Errorf("%w: wc-reduce wants *Partitions or *WCShard, got %T", ErrType, in)
	}
	var out *WordCounts
	ctx.Breakdown.Time(tfidfPhaseInputWC, func() {
		var total uint64
		dicts := make([]dict.Map[uint64], 0, len(shards))
		for _, ws := range shards {
			total += ws.Tokens
			dicts = append(dicts, ws.Counts)
		}
		var merged dict.Map[uint64]
		if len(dicts) == 0 {
			merged = dict.New[uint64](o.DictKind, dict.Options{})
		} else {
			merged = par.TreeReduce(ctx.Pool, dicts, func(a, b dict.Map[uint64]) dict.Map[uint64] {
				if a.Len() < b.Len() {
					a, b = b, a
				}
				b.Range(func(word string, c *uint64) bool {
					*a.Ref(word) += *c
					return true
				})
				return a
			})
		}
		out = buildWordCounts(merged, total)
	})
	return out, nil
}

type byCountDesc struct{ w *WordCounts }

func (b *byCountDesc) Len() int { return len(b.w.Words) }
func (b *byCountDesc) Less(i, j int) bool {
	if b.w.Counts[i] != b.w.Counts[j] {
		return b.w.Counts[i] > b.w.Counts[j]
	}
	return b.w.Words[i] < b.w.Words[j]
}
func (b *byCountDesc) Swap(i, j int) {
	b.w.Words[i], b.w.Words[j] = b.w.Words[j], b.w.Words[i]
	b.w.Counts[i], b.w.Counts[j] = b.w.Counts[j], b.w.Counts[i]
}

// WriteWordCounts emits the final output phase of the word-count workflow:
// "word<TAB>count" lines, most frequent first, sequential.
type WriteWordCounts struct {
	// Filename within ctx.ScratchDir (default "wordcounts.tsv").
	Filename string
	// Limit caps the number of emitted words (0 = all).
	Limit int
}

// Name implements Operator.
func (o *WriteWordCounts) Name() string { return "output" }

// Inputs implements TypedOperator.
func (o *WriteWordCounts) Inputs() []reflect.Type { return []reflect.Type{wordCountsType} }

// Output implements TypedOperator.
func (o *WriteWordCounts) Output() reflect.Type { return wordCountsType }

// Run implements Operator: *WordCounts -> *WordCounts (pass-through).
func (o *WriteWordCounts) Run(ctx *Context, in Value) (Value, error) {
	wc, ok := in.(*WordCounts)
	if !ok {
		return nil, fmt.Errorf("%w: output wants *WordCounts, got %T", ErrType, in)
	}
	name := o.Filename
	if name == "" {
		name = "wordcounts.tsv"
	}
	path := filepath.Join(ctx.ScratchDir, name)
	err := ctx.Breakdown.TimeErr(PhaseOutput, func() error {
		start := time.Now()
		n, err := writeCounts(path, wc, o.Limit)
		ctx.Disk.ChargeRead(n, true)
		ctx.Recorder.Serial(time.Since(start), n, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	return wc, nil
}

func writeCounts(path string, wc *WordCounts, limit int) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var n int64
	end := len(wc.Words)
	if limit > 0 && limit < end {
		end = limit
	}
	for i := 0; i < end; i++ {
		line := fmt.Sprintf("%s\t%d\n", wc.Words[i], wc.Counts[i])
		n += int64(len(line))
		if _, err := w.WriteString(line); err != nil {
			f.Close()
			return n, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}
