package workflow

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"hpa/internal/dict"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/text"
)

// WordCounts is the output of WordCountOp: corpus-wide term frequencies.
type WordCounts struct {
	// Words and Counts are parallel, ordered by descending count (ties by
	// word).
	Words  []string
	Counts []uint64
	// TotalTokens is the token count across the corpus.
	TotalTokens uint64
}

// Top returns the n most frequent words.
func (w *WordCounts) Top(n int) []string {
	if n > len(w.Words) {
		n = len(w.Words)
	}
	return w.Words[:n]
}

// Count returns the frequency of a word (0 if absent).
func (w *WordCounts) Count(word string) uint64 {
	for i, wd := range w.Words {
		if wd == word {
			return w.Counts[i]
		}
	}
	return 0
}

// WordCountOp computes corpus-wide word frequencies — the canonical first
// analytics operator, included as a second instantiation of the workflow
// engine beyond TF/IDF→K-Means. Phase structure mirrors the paper's
// input+wc: parallel per-document tokenize-and-count into per-strand
// dictionaries, merged once at the end (a classic reducer).
type WordCountOp struct {
	// DictKind selects the per-strand dictionary implementation.
	DictKind dict.Kind
	// Stopwords, MinWordLen and Stem configure tokenization.
	Stopwords  *text.StopwordSet
	MinWordLen int
	Stem       bool
}

// Name implements Operator.
func (o *WordCountOp) Name() string { return "wordcount" }

// Inputs implements TypedOperator.
func (o *WordCountOp) Inputs() []reflect.Type { return []reflect.Type{sourceType} }

// Output implements TypedOperator.
func (o *WordCountOp) Output() reflect.Type { return wordCountsType }

// Run implements Operator: pario.Source -> *WordCounts.
func (o *WordCountOp) Run(ctx *Context, in Value) (Value, error) {
	src, ok := in.(pario.Source)
	if !ok {
		return nil, fmt.Errorf("%w: wordcount wants pario.Source, got %T", ErrType, in)
	}
	type strand struct {
		tk *text.Tokenizer
		m  dict.Map[uint64]
		n  uint64
	}
	strands := par.NewReducer(func() *strand {
		return &strand{
			tk: &text.Tokenizer{MinLen: o.MinWordLen, Stopwords: o.Stopwords, Stem: o.Stem},
			m:  dict.New[uint64](o.DictKind, dict.Options{}),
		}
	}, nil)

	var out *WordCounts
	err := ctx.Breakdown.TimeErr(tfidfPhaseInputWC, func() error {
		read := func(h func(int, []byte) error) error {
			if ctx.Ctx != nil {
				return pario.ReadAllContext(ctx.Ctx, src, ctx.Pool.Workers(), h)
			}
			return pario.ReadAll(src, ctx.Pool.Workers(), h)
		}
		if err := read(func(i int, content []byte) error {
			s := strands.Claim()
			s.tk.Tokens(content, func(tok []byte) {
				*s.m.RefBytes(tok)++
				s.n++
			})
			strands.Release(s)
			return nil
		}); err != nil {
			return err
		}

		// Merge per-strand dictionaries (serial: strand count is the peak
		// concurrency, not the corpus size).
		merged := dict.New[uint64](o.DictKind, dict.Options{})
		var total uint64
		for _, s := range strands.Views() {
			total += s.n
			s.m.Range(func(word string, c *uint64) bool {
				*merged.Ref(word) += *c
				return true
			})
		}
		out = &WordCounts{
			Words:       make([]string, 0, merged.Len()),
			Counts:      make([]uint64, 0, merged.Len()),
			TotalTokens: total,
		}
		merged.Range(func(word string, c *uint64) bool {
			out.Words = append(out.Words, word)
			out.Counts = append(out.Counts, *c)
			return true
		})
		sort.Sort(&byCountDesc{out})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// tfidfPhaseInputWC mirrors tfidf.PhaseInputWC without an import cycle.
const tfidfPhaseInputWC = "input+wc"

type byCountDesc struct{ w *WordCounts }

func (b *byCountDesc) Len() int { return len(b.w.Words) }
func (b *byCountDesc) Less(i, j int) bool {
	if b.w.Counts[i] != b.w.Counts[j] {
		return b.w.Counts[i] > b.w.Counts[j]
	}
	return b.w.Words[i] < b.w.Words[j]
}
func (b *byCountDesc) Swap(i, j int) {
	b.w.Words[i], b.w.Words[j] = b.w.Words[j], b.w.Words[i]
	b.w.Counts[i], b.w.Counts[j] = b.w.Counts[j], b.w.Counts[i]
}

// WriteWordCounts emits the final output phase of the word-count workflow:
// "word<TAB>count" lines, most frequent first, sequential.
type WriteWordCounts struct {
	// Filename within ctx.ScratchDir (default "wordcounts.tsv").
	Filename string
	// Limit caps the number of emitted words (0 = all).
	Limit int
}

// Name implements Operator.
func (o *WriteWordCounts) Name() string { return "output" }

// Inputs implements TypedOperator.
func (o *WriteWordCounts) Inputs() []reflect.Type { return []reflect.Type{wordCountsType} }

// Output implements TypedOperator.
func (o *WriteWordCounts) Output() reflect.Type { return wordCountsType }

// Run implements Operator: *WordCounts -> *WordCounts (pass-through).
func (o *WriteWordCounts) Run(ctx *Context, in Value) (Value, error) {
	wc, ok := in.(*WordCounts)
	if !ok {
		return nil, fmt.Errorf("%w: output wants *WordCounts, got %T", ErrType, in)
	}
	name := o.Filename
	if name == "" {
		name = "wordcounts.tsv"
	}
	path := filepath.Join(ctx.ScratchDir, name)
	err := ctx.Breakdown.TimeErr(PhaseOutput, func() error {
		start := time.Now()
		n, err := writeCounts(path, wc, o.Limit)
		ctx.Disk.ChargeRead(n, true)
		ctx.Recorder.Serial(time.Since(start), n, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	return wc, nil
}

func writeCounts(path string, wc *WordCounts, limit int) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var n int64
	end := len(wc.Words)
	if limit > 0 && limit < end {
		end = limit
	}
	for i := 0; i < end; i++ {
		line := fmt.Sprintf("%s\t%d\n", wc.Words[i], wc.Counts[i])
		n += int64(len(line))
		if _, err := w.WriteString(line); err != nil {
			f.Close()
			return n, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}
