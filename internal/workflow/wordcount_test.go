package workflow

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpa/internal/dict"
	"hpa/internal/pario"
	"hpa/internal/text"
)

func wcSource(docs ...string) *pario.MemSource {
	m := &pario.MemSource{}
	for _, d := range docs {
		m.Docs = append(m.Docs, []byte(d))
	}
	return m
}

func TestWordCountHandComputed(t *testing.T) {
	ctx := testCtx(t, 2)
	p := NewPipeline(&WordCountOp{DictKind: dict.Tree})
	out, err := p.Run(ctx, pario.Source(wcSource(
		"the cat sat on the mat",
		"the dog",
	)))
	if err != nil {
		t.Fatal(err)
	}
	wc := out.(*WordCounts)
	if wc.TotalTokens != 8 {
		t.Fatalf("total tokens %d, want 8", wc.TotalTokens)
	}
	if wc.Words[0] != "the" || wc.Counts[0] != 3 {
		t.Fatalf("top word %q:%d, want the:3", wc.Words[0], wc.Counts[0])
	}
	if wc.Count("cat") != 1 || wc.Count("absent") != 0 {
		t.Fatalf("counts wrong: cat=%d", wc.Count("cat"))
	}
	if got := wc.Top(2); len(got) != 2 || got[0] != "the" {
		t.Fatalf("Top(2) = %v", got)
	}
}

func TestWordCountMatchesBruteForceAcrossKindsAndWorkers(t *testing.T) {
	c := testCorpus()
	// Brute force with a plain map.
	want := map[string]uint64{}
	tk := &text.Tokenizer{}
	var wantTotal uint64
	for _, d := range c.Docs {
		tk.Tokens(d, func(tok []byte) {
			want[string(tok)]++
			wantTotal++
		})
	}
	for _, kind := range []dict.Kind{dict.Tree, dict.Hash, dict.NodeTree} {
		for _, workers := range []int{1, 4} {
			ctx := testCtx(t, workers)
			out, err := NewPipeline(&WordCountOp{DictKind: kind}).Run(ctx, pario.Source(c.Source(nil)))
			if err != nil {
				t.Fatal(err)
			}
			wc := out.(*WordCounts)
			if wc.TotalTokens != wantTotal {
				t.Fatalf("%v/%d: total %d want %d", kind, workers, wc.TotalTokens, wantTotal)
			}
			if len(wc.Words) != len(want) {
				t.Fatalf("%v/%d: %d distinct, want %d", kind, workers, len(wc.Words), len(want))
			}
			for i, w := range wc.Words {
				if wc.Counts[i] != want[w] {
					t.Fatalf("%v/%d: %q=%d want %d", kind, workers, w, wc.Counts[i], want[w])
				}
			}
		}
	}
}

func TestWordCountSortedDescending(t *testing.T) {
	ctx := testCtx(t, 2)
	out, err := NewPipeline(&WordCountOp{DictKind: dict.Hash}).Run(ctx, pario.Source(testCorpus().Source(nil)))
	if err != nil {
		t.Fatal(err)
	}
	wc := out.(*WordCounts)
	for i := 1; i < len(wc.Counts); i++ {
		if wc.Counts[i] > wc.Counts[i-1] {
			t.Fatalf("counts not descending at %d", i)
		}
		if wc.Counts[i] == wc.Counts[i-1] && wc.Words[i] < wc.Words[i-1] {
			t.Fatalf("tie not word-ordered at %d", i)
		}
	}
}

func TestWordCountPipelineWithOutput(t *testing.T) {
	ctx := testCtx(t, 2)
	p := NewPipeline(
		&WordCountOp{DictKind: dict.Tree, Stopwords: text.English()},
		&WriteWordCounts{Limit: 10},
	)
	if _, err := p.Run(ctx, pario.Source(testCorpus().Source(nil))); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(ctx.ScratchDir, "wordcounts.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines, want 10 (limit)", len(lines))
	}
	if ctx.Breakdown.Get(PhaseOutput) == 0 || ctx.Breakdown.Get("input+wc") == 0 {
		t.Fatalf("phases missing: %v", ctx.Breakdown)
	}
}

func TestWordCountTypeError(t *testing.T) {
	ctx := testCtx(t, 1)
	if _, err := (&WordCountOp{}).Run(ctx, 42); err == nil {
		t.Fatal("accepted int input")
	}
	if _, err := (&WriteWordCounts{}).Run(ctx, "x"); err == nil {
		t.Fatal("accepted string input")
	}
}
