// Package workflow implements the paper's workflow optimizations on top of
// a typed DAG plan engine with partitioned streaming execution. Operators
// either communicate through files on disk (the "discrete" execution of
// Figure 3, with the intermediate TF/IDF scores materialized as ARFF) or
// are fused into a single image passing data in memory (the "merged"
// execution) — and datasets can flow through the plan as document
// partitions (shards) instead of monoliths, so per-document work stays
// embarrassingly parallel and the only serial points are reductions and
// output, the structure the paper's analysis assumes.
//
// A workflow is a Plan: a DAG of named nodes, each wrapping an Operator
// with declared input/output port types (TypedOperator). Three layers sit
// on top of the graph:
//
//   - validation: Plan.Validate type-checks every edge and rejects cycles
//     and dangling ports before anything runs; partitioned producers
//     present their per-shard payload type to shard consumers and
//     *Partitions to everything else, so shards cannot leak into an
//     operator expecting the whole dataset;
//   - rewriting: Rewriter rules transform a validated plan — FuseRule
//     cancels materialize/load edges anywhere in the graph,
//     SharedScanRule deduplicates identical source scans, and
//     PartitionRule expands fusable operators (TFIDFOp, WordCountOp) into
//     per-shard map kernels around explicit reduce nodes, inserting a
//     PartitionOp that carves the corpus scan into contiguous shards
//     (count-balanced, or byte-balanced under WeightedPartitionRule), and
//     expands KMeansOp into the iterative loop stages kmeans.assign and
//     kmeans.reduce;
//   - execution: Plan.Run schedules partition tasks — (node, shard)
//     pairs, not whole nodes — on the context's pool with a helping join.
//     A shard moves to the next map stage the moment its own data is
//     ready, so one shard can be several stages ahead of another;
//     reductions either gather all shards (DFReduceOp's parallel
//     tree-merge of document frequencies) or absorb shards in completion
//     order (GatherOp streaming vector shards into the final result);
//     iterative operators (IterativeOp — KMAssignOp hosts K-Means on this
//     contract) re-dispatch the same shard task set every iteration with
//     one reduction-barrier task per iteration that merges the shard
//     partials in shard-index order, so the loop's numeric reduce is
//     deterministic no matter how shards were scheduled. Per-shard phase
//     timings union into wall-clock spans under the same Breakdown keys
//     as monolithic runs, merged in deterministic topological order.
//
// The partitioned TF/IDF→K-Means dataflow (TFKMConfig.Shards != 0) is
// shard-granular end-to-end, including the iterative phase:
//
//	scan -> partition -[xN]-> tf-map =[xN]=> df-reduce
//	                          tf-map -[xN]-> transform -[xN]-> gather
//	                          transform =[xN]=> km-assign ~[xS]~> km-reduce -> output
//
// The transform's vector shards (precomputed norms, shard-aligned) feed
// the assignment loop directly; the gather's assembled result joins at the
// reduce for document names and retained scores. The loop's shard count S
// is independent of the map shard count N — the plan optimizer prices and
// retunes it separately (its cost is iteration-count dependent).
//
// Partitioning never changes results: shard boundaries are a pure function
// of corpus size and shard count, document frequencies merge
// commutatively, term IDs are assigned in lexicographic order, shards
// are always identified by partition index rather than completion order,
// and the K-Means per-iteration reduce merges shard accumulators in shard
// order — scores and cluster assignments are bit-identical to the
// unpartitioned plan at any shard count (asserted by the determinism
// tests, for every dictionary kind and both empty-cluster policies).
//
// # Execution backends
//
// Where the executor's (node, shard) tasks physically run is pluggable
// (Backend, Context.Backend): LocalBackend — the default — executes every
// task in-process on the pool, and RPCBackend ships tasks that have a
// serializable descriptor to worker processes over net/rpc + gob (a
// worker is this engine's kernel registry served by ServeWorker; see
// cmd/hpa-workflow -worker). The scheduler never moves: dependency
// tracking, shard ordering and every reduction stay on the coordinator,
// and remote kernels run the same shard functions the local path runs
// (tfidf.CountShard, tfidf.TransformShard, kmeans.AssignRange), so
// results are bit-identical across backends at any shard count.
//
// Remotable tasks are the TF/IDF count and transform shards — their
// corpus shards travel as pario.SourceSpec path descriptors, their
// dictionaries as flattened (word, count) wire forms — and the K-Means
// assignment loop's per-iteration shard tasks, whose documents ship once
// into a worker-side session (pinned to one worker by backend affinity)
// and whose per-iteration traffic is centroids out, kmeans.Accum wire
// forms and assignments back. K-Means++ seeding scan rounds ship as
// prepare-wave tasks through the same pinned sessions (documents ship
// once for seeding and iterations combined); the per-round seed draw
// stays on the coordinator. Splits, the DF tree-merge, the streaming
// gather, the per-iteration barrier and output always run on the
// coordinator; tasks whose inputs cannot be described (in-memory
// sources, disk-simulated sources, stopword-bearing options) quietly
// fall back to the local path.
//
// # Pruning and the wire
//
// Two hot-path optimizations ride the remotable tasks (kernels.go):
//
//   - The K-Means assignment tasks run a bounded kernel (Hamerly's
//     single bound or Elkan's per-centroid bounds, per Options.Prune) when
//     pruning is active — bounds live in the worker-side loop session next
//     to the shipped documents, drift rides the per-iteration task args,
//     and results stay bit-identical to the unpruned kernel (see the
//     kmeans package doc); the optimizer prices each bounded kernel
//     separately (CostModel.KMeansAssignPrunedNS / KMeansAssignElkanNS)
//     and under PruneAuto pins whichever variant is cheaper.
//   - Task payloads avoid redundant and slow serialization. The global
//     term table is content-addressed: transform args carry only its hash,
//     workers cache table bodies (keyed by hash and dictionary kind, with
//     a lazy TTL), and a cache miss answers with a need-resend flag that
//     makes the coordinator re-ship inline exactly once per (worker, hash)
//     — steady-state iterations ship no table at all. A shard's term
//     counts never leave the worker that counted them: count tasks park
//     their output in the worker session under a per-run scope
//     (count→transform affinity), the paired transform task names the
//     session, and the scope's pins are released when the run ends. And
//     the bulk payloads — tfidf.VectorShard, kmeans.AccumWire, assignment
//     replies — travel as flat length-prefixed buffers (internal/flatwire)
//     instead of gob, ~8x faster to encode+decode with orders of magnitude
//     fewer allocations (BENCH_pruned.json); gob remains the envelope for
//     descriptors and everything cold.
//
// Fusion is a graph rewrite: a plan containing an explicit materialize/load
// operator pair around an edge is rewritten by FuseRule into one without
// them. Running the original plan and the fused plan therefore measures
// exactly the cost the paper attributes to intermediate I/O — the operators
// on either side are the same code.
//
// The linear Pipeline of earlier versions survives as a thin adapter that
// compiles to a single-chain Plan, so existing callers keep working
// unchanged.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"hpa/internal/metrics"
	"hpa/internal/obs"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/simsched"
)

// Value is a dataset flowing along a plan edge. Concrete types used by the
// built-in operators: pario.Source (documents), *tfidf.Result, *Matrix
// (term-document score matrix), *ARFFRef (a materialized matrix on disk),
// *WordCounts and *Clustering.
type Value any

// Context carries the execution environment through a plan run.
type Context struct {
	// Pool supplies intra-node parallelism to every operator and schedules
	// independent plan branches.
	Pool *par.Pool
	// Disk models the storage device for inputs and intermediates; nil
	// means unthrottled.
	Disk *pario.DiskSim
	// Breakdown accumulates per-phase wall-clock time (Figure 3/4's
	// stacked bars). Never nil after NewContext.
	Breakdown *metrics.Breakdown
	// Recorder optionally collects a simsched trace of the whole workflow.
	Recorder *simsched.Recorder
	// ScratchDir hosts intermediate files of discrete workflows.
	ScratchDir string
	// Observe, when non-nil, is called after each operator with its output
	// dataset — used for progress reporting and for capturing intermediate
	// measurements (e.g. dictionary footprints) without altering the plan.
	// Plan.Run serializes the calls on the scheduling goroutine.
	Observe func(op Operator, out Value)
	// Ctx, when non-nil, cancels the run cooperatively: nodes not yet
	// started are abandoned once the context is done, and
	// cancellation-aware operators (TF/IDF input) abort mid-phase.
	// Cancellation does not propagate into tasks already shipped to remote
	// workers; the run stops once their in-flight replies drain.
	Ctx context.Context
	// Backend selects where shard tasks execute: nil (or LocalBackend)
	// runs everything in-process on Pool; an RPCBackend ships serializable
	// shard tasks to worker processes. Results are bit-identical across
	// backends — scheduling, reductions and all merge ordering stay on the
	// coordinator.
	Backend Backend
	// Tracer, when non-nil, collects one obs.Span per scheduled task plus
	// wire and loop events (see internal/obs). A nil tracer is free: every
	// recording site is a single nil compare.
	Tracer *obs.Tracer
	// Span is the in-flight span of the task this context was minted for;
	// backends and kernels annotate it (worker lane, wire bytes, codec).
	// Nil outside task execution and on untraced runs.
	Span *obs.Span
}

// NewContext returns a context with an empty breakdown.
func NewContext(pool *par.Pool) *Context {
	return &Context{Pool: pool, Breakdown: metrics.NewBreakdown()}
}

// Operator is one workflow stage.
type Operator interface {
	// Name identifies the operator in errors and plans.
	Name() string
	// Run transforms the input dataset into the output dataset.
	Run(ctx *Context, in Value) (Value, error)
}

// Pipeline is a linear operator chain — the original workflow API, kept as
// a thin adapter that compiles to a single-chain Plan.
type Pipeline struct {
	Ops []Operator
}

// NewPipeline builds a pipeline from operators in execution order.
func NewPipeline(ops ...Operator) *Pipeline { return &Pipeline{Ops: ops} }

// ToPlan compiles the pipeline to an equivalent single-chain Plan. Node
// names are the operator names, suffixed #2, #3, ... on collision.
func (p *Pipeline) ToPlan() *Plan {
	plan, _ := p.compile()
	return plan
}

// compile builds the chain plan and returns it with the node names in
// chain order.
func (p *Pipeline) compile() (*Plan, []string) {
	plan := NewPlan()
	names := make([]string, 0, len(p.Ops))
	used := make(map[string]int, len(p.Ops))
	for _, op := range p.Ops {
		name := op.Name()
		used[name]++
		if n := used[name]; n > 1 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		plan.Add(name, op)
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		plan.Connect(names[i-1], names[i])
	}
	return plan, names
}

// Run threads the input through every operator by compiling the chain to a
// Plan (with a synthetic node feeding in) and executing it. Validation runs
// first, so type mismatches between stages are reported before any operator
// does work.
func (p *Pipeline) Run(ctx *Context, in Value) (Value, error) {
	if ctx.Breakdown == nil {
		ctx.Breakdown = metrics.NewBreakdown()
	}
	if len(p.Ops) == 0 {
		return in, nil
	}
	plan, names := p.compile()
	const inputNode = "#input"
	plan.Add(inputNode, &literalOp{v: in})
	plan.Connect(inputNode, names[0])
	outs, err := plan.Run(ctx)
	if err != nil {
		return nil, err
	}
	return outs[names[len(names)-1]], nil
}

// String renders the plan, marking materialization and partition
// boundaries: an adjacent materialize/load pair — the boundary Fuse
// cancels — is collapsed into a =[arff]=> arrow between its neighbors, so
// the discrete TF/IDF→K-Means chain renders as "tfidf =[arff]=> kmeans ->
// output" while the fused chain is "tfidf -> kmeans -> output". Downstream
// of a Splitter, edges into per-shard kernels render -[xN]-> and the edge
// gathering the shards back renders =[xN]=>, mirroring Plan.Explain:
// "partition -[x4]-> tf-map =[x4]=> reduce".
func (p *Pipeline) String() string {
	var sb strings.Builder
	arrow := " -> "
	nparts := 0 // shard count while inside a partitioned section
	printed := false
	i := 0
	for i < len(p.Ops) {
		if i+1 < len(p.Ops) {
			_, isM := p.Ops[i].(materializer)
			_, isL := p.Ops[i+1].(loader)
			if isM && isL {
				arrow = " =[arff]=> "
				i += 2
				continue
			}
		}
		if printed {
			sb.WriteString(arrow)
		}
		sb.WriteString(p.Ops[i].Name())
		printed = true
		arrow = " -> "
		if s, ok := p.Ops[i].(Splitter); ok {
			nparts = s.PartitionCount()
		}
		if nparts > 0 && i+1 < len(p.Ops) {
			if _, kernel := p.Ops[i+1].(PartitionKernel); kernel {
				arrow = fmt.Sprintf(" -[x%d]-> ", nparts)
			} else {
				arrow = fmt.Sprintf(" =[x%d]=> ", nparts)
				nparts = 0
			}
		}
		i++
	}
	return sb.String()
}

// materializer is implemented by operators that write their input to disk
// for a later loader; loader by operators that read it back. FuseRule
// cancels materialize -> load edges.
type materializer interface{ isMaterializer() }
type loader interface{ isLoader() }

// Fuse returns a copy of the pipeline with every materialize/load pair
// removed — the paper's fusion of discrete operators into "single binaries
// that encapsulate a complex workflow". It compiles the chain to a Plan,
// applies FuseRule and linearizes the result; the input pipeline is
// unchanged.
func Fuse(p *Pipeline) *Pipeline {
	plan := p.ToPlan().Apply(FuseRule())
	order, err := plan.topoOrder()
	if err != nil {
		// A pipeline chain cannot cycle; defensive fallback.
		return NewPipeline(p.Ops...)
	}
	out := &Pipeline{}
	for _, n := range order {
		out.Ops = append(out.Ops, n.op)
	}
	return out
}

// ErrType reports a dataset type mismatch between workflow stages, whether
// detected by Plan.Validate at build time or by an operator at run time.
var ErrType = errors.New("workflow: dataset type mismatch")
