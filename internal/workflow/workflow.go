// Package workflow implements the paper's third optimization, workflow
// fusion (Section 3.3): a small operator-pipeline engine in which operators
// either communicate through files on disk (the "discrete" execution of
// Figure 3, with the intermediate TF/IDF scores materialized as ARFF) or
// are fused into a single executable image passing data in memory (the
// "merged" execution).
//
// Fusion is a graph transform: a pipeline containing an explicit
// materialize/load operator pair around an edge is rewritten by Fuse into
// one without them. Running the original pipeline and the fused pipeline
// therefore measures exactly the cost the paper attributes to intermediate
// I/O — the operators on either side are the same code.
package workflow

import (
	"context"
	"errors"
	"fmt"

	"hpa/internal/metrics"
	"hpa/internal/par"
	"hpa/internal/pario"
	"hpa/internal/simsched"
)

// Value is a dataset flowing along a pipeline edge. Concrete types used by
// the built-in operators: pario.Source (documents), *tfidf.Result,
// *Matrix (term-document score matrix), *ARFFRef (a materialized matrix on
// disk) and *Clustering.
type Value any

// Context carries the execution environment through a pipeline run.
type Context struct {
	// Pool supplies intra-node parallelism to every operator.
	Pool *par.Pool
	// Disk models the storage device for inputs and intermediates; nil
	// means unthrottled.
	Disk *pario.DiskSim
	// Breakdown accumulates per-phase wall-clock time (Figure 3/4's
	// stacked bars). Never nil after NewContext.
	Breakdown *metrics.Breakdown
	// Recorder optionally collects a simsched trace of the whole workflow.
	Recorder *simsched.Recorder
	// ScratchDir hosts intermediate files of discrete pipelines.
	ScratchDir string
	// Observe, when non-nil, is called after each operator with its output
	// dataset — used for progress reporting and for capturing intermediate
	// measurements (e.g. dictionary footprints) without altering the plan.
	Observe func(op Operator, out Value)
	// Ctx, when non-nil, cancels the run cooperatively: the pipeline stops
	// before the next operator once the context is done, and
	// cancellation-aware operators (TF/IDF input) abort mid-phase.
	Ctx context.Context
}

// NewContext returns a context with an empty breakdown.
func NewContext(pool *par.Pool) *Context {
	return &Context{Pool: pool, Breakdown: metrics.NewBreakdown()}
}

// Operator is one workflow stage.
type Operator interface {
	// Name identifies the operator in errors and plans.
	Name() string
	// Run transforms the input dataset into the output dataset.
	Run(ctx *Context, in Value) (Value, error)
}

// Pipeline is a linear operator chain.
type Pipeline struct {
	Ops []Operator
}

// NewPipeline builds a pipeline from operators in execution order.
func NewPipeline(ops ...Operator) *Pipeline { return &Pipeline{Ops: ops} }

// Run threads the input through every operator.
func (p *Pipeline) Run(ctx *Context, in Value) (Value, error) {
	if ctx.Breakdown == nil {
		ctx.Breakdown = metrics.NewBreakdown()
	}
	v := in
	for _, op := range p.Ops {
		if ctx.Ctx != nil {
			if err := ctx.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("workflow: before operator %s: %w", op.Name(), err)
			}
		}
		var err error
		v, err = op.Run(ctx, v)
		if err != nil {
			return nil, fmt.Errorf("workflow: operator %s: %w", op.Name(), err)
		}
		if ctx.Observe != nil {
			ctx.Observe(op, v)
		}
	}
	return v, nil
}

// String renders the plan, marking materialization boundaries.
func (p *Pipeline) String() string {
	s := ""
	for i, op := range p.Ops {
		if i > 0 {
			s += " -> "
		}
		s += op.Name()
	}
	return s
}

// materializer is implemented by operators that write their input to disk
// for a later loader; loader by operators that read it back. Fuse cancels
// adjacent pairs.
type materializer interface{ isMaterializer() }
type loader interface{ isLoader() }

// Fuse returns a copy of the pipeline with every adjacent
// materializer/loader pair removed — the paper's fusion of discrete
// operators into "single binaries that encapsulate a complex workflow". The
// input pipeline is unchanged.
func Fuse(p *Pipeline) *Pipeline {
	out := &Pipeline{}
	i := 0
	for i < len(p.Ops) {
		if i+1 < len(p.Ops) {
			_, isM := p.Ops[i].(materializer)
			_, isL := p.Ops[i+1].(loader)
			if isM && isL {
				i += 2 // cancel the pair: data stays in memory
				continue
			}
		}
		out.Ops = append(out.Ops, p.Ops[i])
		i++
	}
	return out
}

// ErrType reports a dataset type mismatch between pipeline stages.
var ErrType = errors.New("workflow: dataset type mismatch")
