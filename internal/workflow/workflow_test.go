package workflow

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpa/internal/corpus"
	"hpa/internal/dict"
	"hpa/internal/kmeans"
	"hpa/internal/par"
	"hpa/internal/simsched"
	"hpa/internal/tfidf"
)

func testCtx(t *testing.T, workers int) *Context {
	t.Helper()
	p := par.NewPool(workers)
	t.Cleanup(p.Close)
	ctx := NewContext(p)
	ctx.ScratchDir = t.TempDir()
	return ctx
}

func testCorpus() *corpus.Corpus {
	return corpus.Generate(corpus.Mix().Scaled(0.002), nil)
}

func baseCfg(mode Mode) TFKMConfig {
	return TFKMConfig{
		Mode:   mode,
		TFIDF:  tfidf.Options{DictKind: dict.Tree, Normalize: true},
		KMeans: kmeans.Options{K: 8, Seed: 42},
	}
}

func TestPipelinePlanShapes(t *testing.T) {
	d := TFKMPipeline(baseCfg(Discrete))
	m := TFKMPipeline(baseCfg(Merged))
	// The materialize/load pair renders as a marked materialization
	// boundary; the fused chain has no boundary left.
	if got := d.String(); got != "tfidf =[arff]=> kmeans -> output" {
		t.Fatalf("discrete plan: %s", got)
	}
	if got := m.String(); got != "tfidf -> kmeans -> output" {
		t.Fatalf("merged plan: %s", got)
	}
}

func TestFuseRemovesOnlyAdjacentPairs(t *testing.T) {
	p := NewPipeline(&TFIDFOp{}, &MaterializeARFF{}, &KMeansOp{}) // no loader after materializer
	f := Fuse(p)
	if len(f.Ops) != 3 {
		t.Fatalf("fuse removed a non-pair: %s", f)
	}
	p2 := NewPipeline(&MaterializeARFF{}, &LoadARFF{}, &MaterializeARFF{}, &LoadARFF{})
	if f2 := Fuse(p2); len(f2.Ops) != 0 {
		t.Fatalf("fuse left %d ops", len(f2.Ops))
	}
}

func TestFuseDoesNotMutateOriginal(t *testing.T) {
	p := TFKMPipeline(baseCfg(Discrete))
	n := len(p.Ops)
	Fuse(p)
	if len(p.Ops) != n {
		t.Fatal("Fuse mutated its input")
	}
}

func TestMergedAndDiscreteProduceIdenticalClusters(t *testing.T) {
	c := testCorpus()
	var assigns [][]int32
	for _, mode := range []Mode{Discrete, Merged} {
		ctx := testCtx(t, 2)
		rep, err := RunTFKM(c.Source(nil), ctx, baseCfg(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		assigns = append(assigns, rep.Clustering.Result.Assign)
	}
	if len(assigns[0]) != len(assigns[1]) {
		t.Fatalf("doc counts differ: %d vs %d", len(assigns[0]), len(assigns[1]))
	}
	for i := range assigns[0] {
		if assigns[0][i] != assigns[1][i] {
			t.Fatalf("doc %d: discrete cluster %d != merged cluster %d", i, assigns[0][i], assigns[1][i])
		}
	}
}

func TestDiscreteBreakdownHasIOPhases(t *testing.T) {
	ctx := testCtx(t, 2)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Discrete))
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{tfidf.PhaseInputWC, tfidf.PhaseOutput, "kmeans-input", tfidf.PhaseTransform, kmeans.PhaseKMeans, PhaseOutput} {
		if rep.Breakdown.Get(phase) == 0 {
			t.Fatalf("phase %q missing from discrete breakdown: %v", phase, rep.Breakdown)
		}
	}
}

func TestMergedBreakdownLacksIOPhases(t *testing.T) {
	ctx := testCtx(t, 2)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Merged))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown.Get(tfidf.PhaseOutput) != 0 || rep.Breakdown.Get("kmeans-input") != 0 {
		t.Fatalf("merged run performed intermediate I/O: %v", rep.Breakdown)
	}
	for _, phase := range []string{tfidf.PhaseInputWC, tfidf.PhaseTransform, kmeans.PhaseKMeans, PhaseOutput} {
		if rep.Breakdown.Get(phase) == 0 {
			t.Fatalf("phase %q missing from merged breakdown: %v", phase, rep.Breakdown)
		}
	}
}

func TestDictFootprintCapturedInBothModes(t *testing.T) {
	for _, mode := range []Mode{Discrete, Merged} {
		ctx := testCtx(t, 2)
		rep, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(mode))
		if err != nil {
			t.Fatal(err)
		}
		if rep.DictFootprint == 0 {
			t.Fatalf("%v: dictionary footprint not captured", mode)
		}
	}
}

func TestOutputFileWritten(t *testing.T) {
	ctx := testCtx(t, 2)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Merged))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(ctx.ScratchDir, "clusters.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(rep.Clustering.Result.Assign) {
		t.Fatalf("%d output lines for %d docs", len(lines), len(rep.Clustering.Result.Assign))
	}
	for _, line := range lines {
		if !strings.Contains(line, "\t") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestIntermediateARFFOnDiskInDiscreteMode(t *testing.T) {
	ctx := testCtx(t, 1)
	if _, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Discrete)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(ctx.ScratchDir, "tfidf.arff"))
	if err != nil {
		t.Fatalf("intermediate missing: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("intermediate empty")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	ctx := testCtx(t, 1)
	ops := []Operator{&TFIDFOp{}, &MaterializeARFF{}, &LoadARFF{}, &KMeansOp{}, &WriteAssignments{}}
	for _, op := range ops {
		if _, err := op.Run(ctx, "not a dataset"); !errors.Is(err, ErrType) {
			t.Errorf("%s accepted a string input: %v", op.Name(), err)
		}
	}
}

func TestPipelineErrorIdentifiesOperator(t *testing.T) {
	ctx := testCtx(t, 1)
	p := NewPipeline(&LoadARFF{})
	_, err := p.Run(ctx, "bogus")
	if err == nil || !strings.Contains(err.Error(), "load-arff") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecorderCoversAllPhases(t *testing.T) {
	ctx := testCtx(t, 1)
	ctx.Recorder = simsched.NewRecorder()
	if _, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Discrete)); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ph := range ctx.Recorder.Phases() {
		names = append(names, ph.Name)
	}
	want := []string{tfidf.PhaseInputWC, tfidf.PhaseTransform, tfidf.PhaseOutput, "kmeans-input", kmeans.PhaseKMeans, PhaseOutput}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("recorded phases %v missing %q", names, w)
		}
	}
}

func TestObserverSeesEveryOperator(t *testing.T) {
	ctx := testCtx(t, 1)
	var seen []string
	ctx.Observe = func(op Operator, _ Value) { seen = append(seen, op.Name()) }
	if _, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Merged)); err != nil {
		t.Fatal(err)
	}
	want := []string{"source", "tfidf", "kmeans", "output"}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observer saw %v, want %v", seen, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if Discrete.String() != "discrete" || Merged.String() != "merged" {
		t.Fatal("mode labels wrong")
	}
}

func TestHashDictWorkflowMatchesTreeDictWorkflow(t *testing.T) {
	// Figure 4 varies only the dictionary; the clustering must not change.
	c := testCorpus()
	var assigns [][]int32
	for _, kind := range []dict.Kind{dict.Tree, dict.Hash} {
		ctx := testCtx(t, 2)
		cfg := baseCfg(Merged)
		cfg.TFIDF.DictKind = kind
		rep, err := RunTFKM(c.Source(nil), ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assigns = append(assigns, rep.Clustering.Result.Assign)
	}
	for i := range assigns[0] {
		if assigns[0][i] != assigns[1][i] {
			t.Fatalf("doc %d clusters differ across dictionary kinds", i)
		}
	}
}

func TestTopTermLabels(t *testing.T) {
	ctx := testCtx(t, 2)
	rep, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Merged))
	if err != nil {
		t.Fatal(err)
	}
	labels, ok := rep.Clustering.TopTermLabels(5)
	if !ok {
		t.Fatal("fused run did not retain terms")
	}
	if len(labels) != 8 {
		t.Fatalf("%d label sets", len(labels))
	}
	nonEmpty := 0
	for _, l := range labels {
		if len(l) > 0 {
			nonEmpty++
			for _, w := range l {
				if w == "" {
					t.Fatal("empty label word")
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no cluster produced labels")
	}
	// Discrete runs do not retain terms in the Clustering.
	ctx2 := testCtx(t, 2)
	rep2, err := RunTFKM(testCorpus().Source(nil), ctx2, baseCfg(Discrete))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep2.Clustering.TopTermLabels(3); ok {
		t.Fatal("discrete run claimed term labels")
	}
}

func TestWorkflowCancellation(t *testing.T) {
	ctx := testCtx(t, 2)
	cctx, cancel := context.WithCancel(context.Background())
	ctx.Ctx = cctx
	cancel()
	_, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Merged))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWorkflowCancelBetweenOperators(t *testing.T) {
	ctx := testCtx(t, 2)
	cctx, cancel := context.WithCancel(context.Background())
	ctx.Ctx = cctx
	// Cancel right after the first operator completes.
	ctx.Observe = func(op Operator, _ Value) {
		if op.Name() == "tfidf" {
			cancel()
		}
	}
	_, err := RunTFKM(testCorpus().Source(nil), ctx, baseCfg(Merged))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "before operator") {
		t.Fatalf("cancellation not caught at the operator boundary: %v", err)
	}
}
