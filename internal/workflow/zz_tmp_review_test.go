package workflow

import (
	"reflect"
	"testing"

	"hpa/internal/par"
)

// splitN emits ints 0..N-1 as shards.
type splitN struct{ n int }

func (s *splitN) Name() string                { return "splitN" }
func (s *splitN) PartitionCount() int         { return s.n }
func (s *splitN) Inputs() []reflect.Type      { return nil }
func (s *splitN) Output() reflect.Type        { return reflect.TypeOf(0) }
func (s *splitN) Run(ctx *Context, in Value) (Value, error) { return nil, nil }
func (s *splitN) Split(ctx *Context, ins []Value, idx, total int) (Value, error) {
	return idx, nil
}

// sumStream is a single-port stream reducer summing its shards.
type sumStream struct{}

func (o *sumStream) Name() string           { return "sumStream" }
func (o *sumStream) Inputs() []reflect.Type { return []reflect.Type{reflect.TypeOf(0)} }
func (o *sumStream) Output() reflect.Type   { return reflect.TypeOf(0) }
func (o *sumStream) Run(ctx *Context, in Value) (Value, error) { return in, nil }
func (o *sumStream) BeginReduce(ctx *Context, total int, ins []Value) (any, error) {
	s := 0
	return &s, nil
}
func (o *sumStream) AbsorbPartition(ctx *Context, state any, part Value, idx int) error {
	*state.(*int) += part.(int)
	return nil
}
func (o *sumStream) FinishReduce(ctx *Context, state any) (Value, error) {
	return *state.(*int), nil
}

func TestZZTmpSinglePortStreamReducer(t *testing.T) {
	p := NewPlan().
		Add("src", &splitN{n: 4}).
		Add("sum", &sumStream{}).
		Connect("src", "sum")
	pool := par.NewPool(2)
	defer pool.Close()
	outs, err := p.Run(&Context{Pool: pool})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got, ok := outs["sum"]
	if !ok {
		t.Fatalf("sum output missing from sinks: %v", outs)
	}
	if got != 6 {
		t.Fatalf("got %v, want 6", got)
	}
}
