package zipf

// WordTable maps term ranks to deterministic synthetic word strings. Words
// are pronounceable-ish consonant/vowel alternations so that byte volumes
// and tokenizer behavior resemble English text rather than opaque IDs, with
// hot ranks assigned shorter words (as in natural language, where frequent
// words are short — this keeps Table 1 byte-volume calibration realistic).
type WordTable struct {
	words []string
}

var (
	consonants = []byte("bcdfghjklmnpqrstvwz")
	vowels     = []byte("aeiou")
)

// NewWordTable synthesizes v distinct words. Rank 0 receives the shortest
// word; lengths grow with rank roughly logarithmically.
func NewWordTable(v int) *WordTable {
	w := &WordTable{words: make([]string, v)}
	var buf []byte
	for i := 0; i < v; i++ {
		w.words[i] = string(synthesize(uint64(i), buf[:0]))
	}
	return w
}

// synthesize builds the word for rank i by encoding i in a mixed-radix
// consonant-vowel alternation. Distinctness: the encoding is a bijection
// between integers and CV strings, so distinct ranks yield distinct words.
func synthesize(i uint64, buf []byte) []byte {
	n := i
	for k := 0; ; k++ {
		if k%2 == 0 {
			buf = append(buf, consonants[n%uint64(len(consonants))])
			n /= uint64(len(consonants))
		} else {
			buf = append(buf, vowels[n%uint64(len(vowels))])
			n /= uint64(len(vowels))
		}
		if n == 0 && k >= 1 {
			break
		}
	}
	return buf
}

// Word returns the word for 0-based rank i.
func (w *WordTable) Word(i int) string { return w.words[i] }

// Len returns the number of words.
func (w *WordTable) Len() int { return len(w.words) }

// AvgLen returns the mean word length in bytes, weighted by the sampler's
// rank probabilities, used to convert byte-volume targets into token counts.
func (w *WordTable) AvgLen(z *Sampler) float64 {
	n := len(w.words)
	if z.V() < n {
		n = z.V()
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += z.P(i) * float64(len(w.words[i]))
	}
	return total
}
