// Package zipf provides a deterministic pseudo-random generator and a
// bounded Zipf-Mandelbrot sampler, used to synthesize document corpora whose
// vocabulary statistics match the paper's Table 1 datasets.
//
// Natural-language word frequencies follow a Zipfian law; sampling term IDs
// from Zipf(s, V) and mapping IDs to synthetic words reproduces the
// sparsity profile that makes the paper's dictionary and sparse-vector
// trade-offs appear: a few very hot words, a long tail of rare ones, and a
// distinct-word count that grows sublinearly with corpus size (Heaps' law).
package zipf

import "math"

// RNG is a small, fast, deterministic generator (xorshift* family). It is
// not cryptographically secure; it exists so corpus generation is exactly
// reproducible across runs and platforms, independent of math/rand's seeding
// behavior.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64 so that nearby
// seeds produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator.
func (r *RNG) Seed(seed uint64) {
	// Run the seed through SplitMix64 twice; a zero state would lock
	// xorshift at zero forever.
	s := splitmix64(seed)
	s = splitmix64(s)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("zipf: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(mu + sigma*N(0,1)), used for document lengths.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampler draws ranks from a bounded Zipf-Mandelbrot distribution:
// P(k) ∝ 1/(k+q)^s for k in [1, V]. Sampling uses a precomputed CDF and
// binary search: O(V) memory once, O(log V) per draw, fully deterministic.
type Sampler struct {
	cdf []float64 // cdf[k] = P(rank <= k+1)
	s   float64
	q   float64
}

// NewSampler builds a sampler over ranks 1..v with exponent s and
// Mandelbrot shift q. It panics if v < 1 or s <= 0.
func NewSampler(v int, s, q float64) *Sampler {
	if v < 1 {
		panic("zipf: vocabulary size < 1")
	}
	if s <= 0 {
		panic("zipf: exponent <= 0")
	}
	cdf := make([]float64, v)
	sum := 0.0
	for k := 1; k <= v; k++ {
		sum += math.Pow(float64(k)+q, -s)
		cdf[k-1] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[v-1] = 1 // guard against rounding
	return &Sampler{cdf: cdf, s: s, q: q}
}

// V returns the number of ranks.
func (z *Sampler) V() int { return len(z.cdf) }

// Sample draws a rank in [0, V) (0-based: rank 0 is the most frequent).
func (z *Sampler) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability of 0-based rank k.
func (z *Sampler) P(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// ExpectedDistinct estimates the expected number of distinct ranks seen
// after n draws: sum over k of 1-(1-P(k))^n. Used to calibrate vocabulary
// size against the paper's Table 1 distinct-word targets without generating
// the corpus.
func (z *Sampler) ExpectedDistinct(n int) float64 {
	total := 0.0
	fn := float64(n)
	for k := range z.cdf {
		p := z.P(k)
		// 1-(1-p)^n via expm1/log1p for numerical stability at tiny p.
		total += -math.Expm1(fn * math.Log1p(-p))
	}
	return total
}
