package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDecorrelated(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from adjacent seeds", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck-at-zero stream")
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	var sum, sumsq float64
	const n = 200_000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestSamplerCDFMonotoneAndNormalized(t *testing.T) {
	z := NewSampler(1000, 1.07, 2.7)
	prev := 0.0
	for i, c := range z.cdf {
		if c < prev {
			t.Fatalf("cdf not monotone at %d: %v < %v", i, c, prev)
		}
		prev = c
	}
	if z.cdf[len(z.cdf)-1] != 1 {
		t.Fatalf("cdf tail = %v, want 1", z.cdf[len(z.cdf)-1])
	}
}

func TestSamplerProbabilitiesSumToOne(t *testing.T) {
	z := NewSampler(500, 1.0, 0)
	sum := 0.0
	for k := 0; k < z.V(); k++ {
		sum += z.P(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum P(k) = %v, want 1", sum)
	}
}

func TestSamplerRankOrdering(t *testing.T) {
	z := NewSampler(100, 1.2, 0)
	for k := 1; k < z.V(); k++ {
		if z.P(k) > z.P(k-1) {
			t.Fatalf("P(%d)=%v > P(%d)=%v: not rank-decreasing", k, z.P(k), k-1, z.P(k-1))
		}
	}
}

func TestSamplerEmpiricalFrequencies(t *testing.T) {
	z := NewSampler(50, 1.0, 0)
	r := NewRNG(99)
	counts := make([]int, z.V())
	const n = 500_000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k := 0; k < 10; k++ {
		got := float64(counts[k]) / n
		want := z.P(k)
		if math.Abs(got-want) > 0.15*want+0.001 {
			t.Fatalf("rank %d empirical freq %v, want ~%v", k, got, want)
		}
	}
}

func TestSamplerBoundsPanic(t *testing.T) {
	for _, c := range []struct {
		v int
		s float64
	}{{0, 1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSampler(%d, %v, 0) did not panic", c.v, c.s)
				}
			}()
			NewSampler(c.v, c.s, 0)
		}()
	}
}

func TestExpectedDistinctBounds(t *testing.T) {
	z := NewSampler(1000, 1.05, 1)
	if d := z.ExpectedDistinct(0); d != 0 {
		t.Fatalf("ExpectedDistinct(0) = %v, want 0", d)
	}
	d1 := z.ExpectedDistinct(1_000)
	d2 := z.ExpectedDistinct(100_000)
	if !(d1 > 0 && d1 < d2 && d2 <= 1000) {
		t.Fatalf("ExpectedDistinct not monotone/bounded: %v, %v", d1, d2)
	}
}

func TestExpectedDistinctMatchesEmpirical(t *testing.T) {
	z := NewSampler(2000, 1.07, 2)
	r := NewRNG(123)
	const n = 20_000
	seen := make([]bool, z.V())
	distinct := 0
	for i := 0; i < n; i++ {
		k := z.Sample(r)
		if !seen[k] {
			seen[k] = true
			distinct++
		}
	}
	want := z.ExpectedDistinct(n)
	if math.Abs(float64(distinct)-want) > 0.05*want {
		t.Fatalf("empirical distinct %d vs expected %.0f (>5%% off)", distinct, want)
	}
}

func TestWordTableDistinct(t *testing.T) {
	const v = 20_000
	w := NewWordTable(v)
	seen := make(map[string]int, v)
	for i := 0; i < v; i++ {
		word := w.Word(i)
		if word == "" {
			t.Fatalf("rank %d has empty word", i)
		}
		if prev, dup := seen[word]; dup {
			t.Fatalf("ranks %d and %d share word %q", prev, i, word)
		}
		seen[word] = i
	}
}

func TestWordTableLowercaseAlpha(t *testing.T) {
	w := NewWordTable(5000)
	for i := 0; i < w.Len(); i++ {
		for _, c := range w.Word(i) {
			if c < 'a' || c > 'z' {
				t.Fatalf("word %q contains non-lowercase-letter %q", w.Word(i), c)
			}
		}
	}
}

func TestWordTableHotRanksShort(t *testing.T) {
	w := NewWordTable(100_000)
	if len(w.Word(0)) > len(w.Word(99_999)) {
		// lengths must be non-decreasing-ish: spot check extremes
		t.Fatalf("rank 0 word %q longer than tail word %q", w.Word(0), w.Word(99_999))
	}
}

func TestAvgLenReasonable(t *testing.T) {
	z := NewSampler(10_000, 1.05, 1)
	w := NewWordTable(10_000)
	avg := w.AvgLen(z)
	if avg < 2 || avg > 8 {
		t.Fatalf("frequency-weighted average word length %v outside [2,8]", avg)
	}
}

func BenchmarkSample(b *testing.B) {
	z := NewSampler(270_000, 1.07, 2.7)
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}
